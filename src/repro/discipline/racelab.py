"""Race clock disciplines head-to-head over identical faultlab scenarios.

Every race entry runs the *same* scenario spec with the *same* seed — and
therefore, by the name-keyed :class:`~repro.sim.randomness.RandomStreams`
contract, the same fault streams, the same skews, the same telemetry ring
behavior — with one :class:`RaceObserver` attached.  The observer gives
its discipline a software clock (an
:class:`~repro.clocks.clock.AdjustableFrequencyClock` over a skewed TSC
oscillator) on one node and a *measured* view of that node's DTP counter:
periodic daemon-style reads whose latency carries jitter, occasional
spikes, and queueing behind background load in a
:class:`~repro.network.queues.ByteFifo` (the congestion discipline's
marking signal).  Because observers only read network state and draw from
new ``racelab/*`` streams, the scenario's own metrics stay byte-identical
to an observer-free run — each entry embeds the scenario digest and
:func:`run_race_campaign` refuses to rank entries whose digests diverge.

Scoring is true offset (disciplined clock minus the node's DTP-counter
time), sampled on a fixed cadence the disciplines never see:

* ``max_abs_offset_fs`` — worst excursion over the whole run;
* ``convergence_time_fs`` — start of the final all-inside-the-band
  suffix (−1 if the run does not end converged);
* ``time_above_bound_fs`` — scored samples outside the band times the
  scoring interval.

The read model: software stamps its clock at issue and completion and
anchors the latched counter at the stamp midpoint (exactly the DTP
daemon's PCIe trick), so the irreducible error is the request/response
*asymmetry*.  Background bursts queue on the response leg, biasing
marked samples positive — the structure the congestion-assisted
discipline is built to subtract.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from ..clocks.clock import AdjustableFrequencyClock
from ..clocks.oscillator import ConstantSkew
from ..clocks.tsc import TscCounter
from ..experiments.parallel import ExperimentTask, derive_seed, run_named_tasks
from ..faultlab.campaign import CampaignError, metrics_digest, run_scenario
from ..faultlab.scenarios import BUILTIN_SCENARIOS, FABRIC_SCENARIOS
from ..ioutil import atomic_write_text
from ..network.queues import ByteFifo
from ..sim import units
from .base import (
    ACTION_STEP,
    Discipline,
    DisciplineError,
    Observation,
    build_discipline,
)

#: The default race card: the four controllers the issue pits against
#: each other (see ``repro racelab --list``).
DEFAULT_DISCIPLINES = ("pi", "daemon", "skewless", "congestion")


@dataclass(frozen=True)
class RaceSettings:
    """Measurement-path and scoring knobs, shared by every race entry.

    These parameterize the *track*, not the racers: one ``RaceSettings``
    applies to all disciplines of a scenario, and all its randomness
    comes from ``racelab/*`` streams keyed only by the observed node —
    identical across disciplines by construction.
    """

    #: Node whose clock is disciplined (default: last topology node).
    node: Optional[str] = None
    obs_interval_fs: int = 25 * units.US
    score_interval_fs: int = 10 * units.US
    #: Initial phase error of the disciplined clock.  Deliberately below
    #: the PI servo's 10 us step threshold so every controller starts in
    #: its slew regime — a fair race for the step-free skewless entry.
    init_offset_fs: int = 100 * units.NS
    #: Convergence band for scoring.
    bound_fs: int = 120 * units.NS
    #: Scoring starts here: the initial acquisition is slew-rate-limited
    #: (the +/-500 ppm clamp) and therefore near-identical for every
    #: controller, so scoring it would only mask the differences the
    #: race is about.  Convergence times are absolute simulation times
    #: but only scored samples count.
    warmup_fs: int = 500 * units.US
    #: TSC oscillator skew drawn uniformly from +/- this (ppm).
    tsc_skew_ppm_limit: float = 25.0
    # Read-path latency model (PCIe-flavored), split per direction.
    read_base_fs: int = 125 * units.NS
    read_jitter_fs: int = 40 * units.NS
    spike_probability: float = 0.02
    spike_mean_fs: int = 300 * units.NS
    # Background load sharing the response-leg egress queue.
    queue_capacity_bytes: int = 32 * 1024
    packet_bytes: int = 1500
    #: Line-rate drain: 0.8 ns per byte (10 GbE).
    byte_time_fs: int = 800_000
    burst_probability: float = 0.05
    burst_max_packets: int = 3


class RaceObserver:
    """Attach one discipline to a running scenario (campaign observer).

    Instances are single-use: construct, pass via ``observers=[...]`` to
    :func:`~repro.faultlab.campaign.run_scenario`, then read
    :meth:`results`.
    """

    def __init__(
        self, discipline: Discipline, settings: Optional[RaceSettings] = None
    ) -> None:
        self.discipline = discipline
        self.settings = settings or RaceSettings()
        self.reads_skipped = 0
        self.action_counts = {"step": 0, "slew": 0, "hold": 0}
        self._score_times: List[int] = []
        self._score_values: List[int] = []
        self._pending = False
        self._attached = False

    # ------------------------------------------------------------------
    # Campaign observer protocol
    # ------------------------------------------------------------------
    def __call__(
        self, *, sim, network, streams, checker, telemetry, duration_fs
    ) -> None:
        if self._attached:
            raise DisciplineError("RaceObserver instances are single-use")
        self._attached = True
        s = self.settings
        node = s.node or list(network.topology.nodes)[-1]
        if node not in network.devices:
            raise DisciplineError(f"race node {node!r} not in topology")
        self.node = node
        self.sim = sim
        self.device = network.devices[node]
        self._period_fs = self.device.oscillator.nominal_period_fs
        self._increment = self.device.counter_increment
        # Stream names are keyed by the node only — never by the
        # discipline — so every racer sees identical skew, read noise,
        # and background load for a given scenario seed.
        tsc_rng = streams.stream(f"racelab/{node}/tsc")
        self._read_rng = streams.stream(f"racelab/{node}/read")
        self._load_rng = streams.stream(f"racelab/{node}/load")
        tsc = TscCounter(
            skew=ConstantSkew(
                tsc_rng.uniform(-s.tsc_skew_ppm_limit, s.tsc_skew_ppm_limit)
            ),
            name=f"race-tsc/{node}",
        )
        self.clock = AdjustableFrequencyClock(
            tsc.oscillator, name=f"race/{node}"
        )
        self.clock.set_time(sim.now, self._reference_fs(sim.now) + s.init_offset_fs)
        self.fifo = ByteFifo(capacity_bytes=s.queue_capacity_bytes)
        self._drain_budget_bytes = s.obs_interval_fs // s.byte_time_fs
        self._tracer = telemetry.tracer if telemetry is not None else None
        if self._tracer is not None:
            self._subject = self._tracer.subject_id(f"race/{node}")
        self._actions_metric = None
        if telemetry is not None:
            self._actions_metric = telemetry.registry.counter(
                "discipline_actions_total",
                "Corrections emitted by the raced discipline.",
                ("discipline", "action"),
            )
        sim.schedule(s.obs_interval_fs, self._observe)
        sim.schedule(s.warmup_fs + s.score_interval_fs, self._score)

    # ------------------------------------------------------------------
    # Measurement loop
    # ------------------------------------------------------------------
    def _reference_fs(self, t_fs: int) -> int:
        """The node's DTP-counter time (fs): the truth being chased."""
        counter = self.device.global_counter(t_fs)
        return counter * self._period_fs // self._increment

    def _observe(self) -> None:
        s = self.settings
        self.sim.schedule(s.obs_interval_fs, self._observe)
        # Background load: drain one interval's line-rate budget, then
        # maybe enqueue a burst.  Both touch only racelab/* streams.
        budget = self._drain_budget_bytes
        while budget > 0 and len(self.fifo):
            head = self.fifo.pop()
            budget -= head[1]
        if self._load_rng.random() < s.burst_probability:
            for _ in range(self._load_rng.randint(1, s.burst_max_packets)):
                self.fifo.push("load", s.packet_bytes)
        if self._pending:
            # A real daemon never overlaps PCIe reads; a read still in
            # flight (queue wait beyond the cadence) skips this slot.
            self.reads_skipped += 1
            return
        self._pending = True
        t_issue = self.sim.now
        req_fs = s.read_base_fs // 2 + self._read_rng.randint(0, s.read_jitter_fs // 2)
        resp_fs = s.read_base_fs // 2 + self._read_rng.randint(0, s.read_jitter_fs // 2)
        if self._read_rng.random() < s.spike_probability:
            resp_fs += round(self._read_rng.expovariate(1.0 / s.spike_mean_fs))
        # The completion crosses the loaded egress queue.
        queue_wait_fs = self.fifo.bytes_queued * s.byte_time_fs
        resp_fs += queue_wait_fs
        queue_frac = self.fifo.bytes_queued / self.fifo.capacity_bytes
        latch_ref_fs = self._reference_fs(t_issue + req_fs)
        clock_issue_fs = self.clock.time_at(t_issue)
        self.sim.schedule_at(
            t_issue + req_fs + resp_fs,
            self._complete,
            clock_issue_fs,
            latch_ref_fs,
            queue_frac,
        )

    def _complete(
        self, clock_issue_fs: float, latch_ref_fs: int, queue_frac: float
    ) -> None:
        self._pending = False
        s = self.settings
        t_fs = self.sim.now
        clock_complete_fs = self.clock.time_at(t_fs)
        measured_delay_fs = clock_complete_fs - clock_issue_fs
        midpoint_fs = (clock_issue_fs + clock_complete_fs) / 2.0
        measured_offset_fs = midpoint_fs - latch_ref_fs
        obs = Observation(
            time_fs=t_fs,
            offset_fs=measured_offset_fs,
            interval_fs=s.obs_interval_fs,
            delay_fs=measured_delay_fs,
            queue_frac=queue_frac,
        )
        action = self.discipline.observe(obs)
        if action.kind == ACTION_STEP:
            self.clock.step(t_fs, action.step_fs)
        if action.freq_adj is not None:
            self.clock.slew(t_fs, action.freq_adj)
        self.action_counts[action.kind] = self.action_counts.get(action.kind, 0) + 1
        if self._tracer is not None:
            from ..telemetry.events import (
                DISC_ACTION_CODES,
                EV_DISC_ACTION,
                EV_DISC_OBSERVE,
            )

            self._tracer.record(
                t_fs,
                EV_DISC_OBSERVE,
                self._subject,
                int(round(measured_offset_fs)),
                int(round(measured_delay_fs)),
            )
            payload = (
                int(round(action.step_fs))
                if action.kind == ACTION_STEP
                else round((action.freq_adj or 0.0) * 1e9)
            )
            self._tracer.record(
                t_fs,
                EV_DISC_ACTION,
                self._subject,
                DISC_ACTION_CODES[action.kind],
                payload,
            )
        if self._actions_metric is not None:
            self._actions_metric.labels(
                discipline=self.discipline.name, action=action.kind
            ).inc()

    def _score(self) -> None:
        self.sim.schedule(self.settings.score_interval_fs, self._score)
        t_fs = self.sim.now
        true_offset = self.clock.time_at(t_fs) - self._reference_fs(t_fs)
        self._score_times.append(t_fs)
        self._score_values.append(int(round(true_offset)))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def results(self) -> Dict[str, object]:
        """Integer-only race metrics (canonical-JSON digestable)."""
        s = self.settings
        values = self._score_values
        band = s.bound_fs
        above = sum(1 for v in values if abs(v) > band)
        suffix_start = len(values)
        while suffix_start > 0 and abs(values[suffix_start - 1]) <= band:
            suffix_start -= 1
        converged = bool(values) and suffix_start < len(values)
        return {
            "discipline": self.discipline.name,
            "kind": self.discipline.kind,
            "node": self.node,
            "max_abs_offset_fs": max((abs(v) for v in values), default=0),
            "final_offset_fs": values[-1] if values else 0,
            "convergence_time_fs": (
                self._score_times[suffix_start] if converged else -1
            ),
            "time_above_bound_fs": above * s.score_interval_fs,
            "bound_fs": band,
            "score_samples": len(values),
            "observations": self.discipline.observations,
            "reads_skipped": self.reads_skipped,
            "actions": dict(sorted(self.action_counts.items())),
            "clock_steps": self.clock.steps,
            "clock_slews": self.clock.slews,
            "final_freq_ppb": round(self.clock.freq_adj * 1e9),
            "queue_peak_bytes": self.fifo.peak_bytes,
            "queue_drops": self.fifo.dropped,
            "snapshot": self.discipline.snapshot(),
        }


# ----------------------------------------------------------------------
# Running races
# ----------------------------------------------------------------------
def discipline_label(spec) -> str:
    """The label a discipline spec races under (its ``name`` or kind)."""
    if isinstance(spec, str):
        return spec
    label = spec.get("name") or spec.get("kind")
    if not label:
        raise DisciplineError(f"discipline spec needs a kind: {spec!r}")
    return str(label)


def run_race_scenario(
    spec: Dict[str, object],
    discipline_spec,
    seed: int = 0,
    settings: Optional[RaceSettings] = None,
    telemetry=None,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run one (scenario, discipline) race entry.

    Returns ``{"race": ..., "scenario_metrics": ..., "scenario_digest":
    ...}`` — the digest is of the scenario's own metrics and must match
    an observer-free run of the same spec and seed.
    """
    discipline = build_discipline(discipline_spec)
    observer = RaceObserver(discipline, settings)
    metrics = run_scenario(
        spec,
        seed=seed,
        telemetry=telemetry,
        trace_dir=trace_dir,
        metrics_dir=metrics_dir,
        observers=[observer],
    )
    # The fairness digest covers the scenario's own metrics only: with
    # telemetry export enabled, the race observer's EV_DISC_* events and
    # discipline_actions_total family land in the "telemetry" overlay
    # and legitimately differ per discipline.
    scenario_only = {k: v for k, v in metrics.items() if k != "telemetry"}
    return {
        "scenario": str(spec.get("name", "scenario")),
        "seed": seed,
        "race": observer.results(),
        "scenario_metrics": metrics,
        "scenario_digest": metrics_digest(scenario_only),
    }


def _race_task(
    spec: Dict[str, object],
    discipline_spec,
    seed: int,
    settings: Optional[RaceSettings] = None,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Module-level (picklable) worker for the parallel runner."""
    return run_race_scenario(
        spec,
        discipline_spec,
        seed=seed,
        settings=settings,
        trace_dir=trace_dir,
        metrics_dir=metrics_dir,
    )


def _congested_baseline(quick: bool) -> Dict[str, object]:
    spec = BUILTIN_SCENARIOS["baseline"](quick)
    spec["name"] = "congested-baseline"
    return spec


#: Race-only scenarios: name -> (spec builder, RaceSettings overrides).
#: These never join ``BUILTIN_SCENARIOS`` — ``repro faultlab`` and the
#: insight tooling assume exactly nine builtins.
EXTRA_RACE_SCENARIOS: Dict[str, tuple] = {
    "congested-baseline": (
        _congested_baseline,
        {"burst_probability": 0.55, "burst_max_packets": 18},
    ),
    # The 128-direction fabric track: servo behavior over a multi-path
    # Clos rather than a chain.  Races always run on the scalar backend
    # (observers), so this doubles as the race card for the topology the
    # sharded backend benches on.
    "clos-fabric": (FABRIC_SCENARIOS["clos-fabric"], {}),
}


def race_scenario_names() -> List[str]:
    return list(BUILTIN_SCENARIOS) + list(EXTRA_RACE_SCENARIOS)


def race_specs(
    names: Optional[Iterable[str]] = None, quick: bool = False
) -> List[Dict[str, object]]:
    """Specs for the named race scenarios (all builtins + race-only)."""
    if names is None:
        names = race_scenario_names()
    specs = []
    for name in names:
        if name in BUILTIN_SCENARIOS:
            specs.append(BUILTIN_SCENARIOS[name](quick))
        elif name in EXTRA_RACE_SCENARIOS:
            specs.append(EXTRA_RACE_SCENARIOS[name][0](quick))
        else:
            raise CampaignError(
                f"unknown race scenario {name!r}; known: "
                f"{sorted(race_scenario_names())}"
            )
    return specs


def scenario_settings(
    name: str, settings: Optional[RaceSettings] = None
) -> RaceSettings:
    """The effective settings for one scenario (race-only overrides)."""
    base = settings or RaceSettings()
    overrides = EXTRA_RACE_SCENARIOS.get(name, (None, {}))[1]
    return replace(base, **overrides) if overrides else base


def run_race_campaign(
    specs: Iterable[Dict[str, object]],
    disciplines: Iterable = DEFAULT_DISCIPLINES,
    base_seed: int = 0,
    jobs: Optional[int] = 1,
    settings: Optional[RaceSettings] = None,
    out_dir: Optional[str] = None,
    trace_dir: Optional[str] = None,
    metrics_dir: Optional[str] = None,
) -> Dict[str, Dict[str, object]]:
    """Race every discipline over every scenario; group results by scenario.

    Each entry's seed derives from the scenario *name only* — all
    disciplines of a scenario share one seed, hence identical fault and
    measurement streams, and adding or removing competitors never
    changes anyone's run.  Raises :class:`DisciplineError` if any
    entry's embedded scenario digest diverges from its siblings (the
    observer perturbed the scenario — a fairness bug, never expected).

    With ``out_dir``, writes ``<scenario>.race.json`` per scenario plus
    ``race-report.md`` (both canonical and byte-stable for a seed).
    With ``trace_dir`` / ``metrics_dir``, every entry exports its
    scenario's telemetry artifacts under a ``<dir>/<discipline>/``
    subdirectory (artifact names are keyed by scenario, so entries of
    one scenario would otherwise collide).
    """
    specs = list(specs)
    disciplines = list(disciplines)
    labels = [discipline_label(d) for d in disciplines]
    if len(set(labels)) != len(labels):
        raise DisciplineError(f"duplicate discipline labels: {labels}")
    for d in disciplines:
        build_discipline(d)  # validate before spawning workers
    tasks = []
    for spec in specs:
        if "name" not in spec:
            raise CampaignError("race scenarios need a 'name'")
        name = str(spec["name"])
        seed = derive_seed(base_seed, name)
        effective = scenario_settings(name, settings)
        for disc, label in zip(disciplines, labels):
            tasks.append(
                ExperimentTask(
                    f"{name}/{label}",
                    _race_task,
                    (spec, disc, seed),
                    {
                        "settings": effective,
                        "trace_dir": (
                            os.path.join(trace_dir, label)
                            if trace_dir is not None
                            else None
                        ),
                        "metrics_dir": (
                            os.path.join(metrics_dir, label)
                            if metrics_dir is not None
                            else None
                        ),
                    },
                    seed=seed,
                )
            )
    results = run_named_tasks(tasks, jobs=jobs)
    races: Dict[str, Dict[str, object]] = {}
    for spec in specs:
        name = str(spec["name"])
        entries = {
            label: results[f"{name}/{label}"] for label in labels
        }
        digests = {entry["scenario_digest"] for entry in entries.values()}
        if len(digests) != 1:
            raise DisciplineError(
                f"scenario {name!r} diverged across disciplines: "
                f"{sorted(digests)} — an observer perturbed the run"
            )
        first = entries[labels[0]]
        races[name] = {
            "seed": first["seed"],
            "scenario_digest": first["scenario_digest"],
            "scenario_metrics": first["scenario_metrics"],
            "entries": {label: entries[label]["race"] for label in labels},
        }
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        for name, data in races.items():
            atomic_write_text(
                os.path.join(out_dir, f"{name}.race.json"),
                json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n",
            )
        atomic_write_text(
            os.path.join(out_dir, "race-report.md"),
            "\n".join(render_race_report(races)) + "\n",
        )
    return races


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def _rank_key(entry: Dict[str, object]):
    convergence = entry["convergence_time_fs"]
    return (
        entry["max_abs_offset_fs"],
        entry["time_above_bound_fs"],
        convergence if convergence >= 0 else float("inf"),
        entry["discipline"],
    )


def ranked_entries(data: Dict[str, object]) -> List[Dict[str, object]]:
    """One scenario's race entries, best first."""
    return sorted(data["entries"].values(), key=_rank_key)


def render_race_report(races: Dict[str, Dict[str, object]]) -> List[str]:
    """Deterministic race report, ending with the racelab digest."""
    lines: List[str] = ["# Discipline race report", ""]
    wins: Dict[str, int] = {}
    for name, data in races.items():
        lines.append(f"## {name}")
        lines.append(
            f"seed={data['seed']}  scenario-digest={data['scenario_digest'][:12]}"
        )
        lines.append("")
        lines.append(
            "| rank | discipline | max offset (fs) | converged at (fs) "
            "| above bound (fs) | steps | slews | holds |"
        )
        lines.append("|---|---|---|---|---|---|---|---|")
        ranked = ranked_entries(data)
        for rank, entry in enumerate(ranked, start=1):
            actions = entry["actions"]
            converged = entry["convergence_time_fs"]
            lines.append(
                f"| {rank} | {entry['discipline']} "
                f"| {entry['max_abs_offset_fs']} "
                f"| {converged if converged >= 0 else 'never'} "
                f"| {entry['time_above_bound_fs']} "
                f"| {actions.get('step', 0)} | {actions.get('slew', 0)} "
                f"| {actions.get('hold', 0)} |"
            )
        winner = ranked[0]
        wins[winner["discipline"]] = wins.get(winner["discipline"], 0) + 1
        lines.append("")
        lines.append(
            f"winner: {winner['discipline']} "
            f"(max offset {winner['max_abs_offset_fs']} fs)"
        )
        if len(ranked) > 1:
            runner_up = ranked[1]
            lines.append(
                f"margin over {runner_up['discipline']}: "
                f"{runner_up['max_abs_offset_fs'] - winner['max_abs_offset_fs']} fs"
            )
        lines.append("")
    if wins:
        board = "  ".join(
            f"{label}={count}"
            for label, count in sorted(wins.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        lines.append(f"leaderboard (wins): {board}")
    lines.append(f"racelab sha256: {metrics_digest(races)}")
    return lines
