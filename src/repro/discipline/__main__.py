"""``python -m repro.discipline`` entry point (the racelab CLI)."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
