"""A complete PTP deployment over a packet network.

Reproduces the paper's PTP testbed (Section 6.1): a grandmaster and
clients hanging off one cut-through switch configured as a transparent
clock, hardware timestamping at every NIC, and configurable background
load.  The load is applied as fluid virtual backlogs on the egress
interfaces (see :mod:`repro.network.virtualload`), which lets idle and
loaded runs alike simulate *paper-faithful wall-clock durations* (the
sync interval is the real 1 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..clocks.clock import AdjustableFrequencyClock
from ..clocks.oscillator import Oscillator, RandomWalkSkew
from ..network.packet import PacketNetwork, Switch
from ..network.topology import Topology
from ..network.virtualload import heavy_backlog, idle_backlog, medium_backlog
from ..phy.specs import PHY_10G
from ..sim import units
from ..sim.engine import Simulator
from ..sim.randomness import RandomStreams
from .master import PtpMaster
from .slave import PtpSlave

LOAD_IDLE = "idle"
LOAD_MEDIUM = "medium"
LOAD_HEAVY = "heavy"

_LOAD_FACTORIES = {
    LOAD_IDLE: idle_backlog,
    LOAD_MEDIUM: medium_backlog,
    LOAD_HEAVY: heavy_backlog,
}


@dataclass
class PtpConfig:
    """Deployment parameters (defaults follow the paper's testbed)."""

    sync_interval_fs: int = units.SEC  # the provider-recommended 1 Hz
    switch_mode: str = Switch.MODE_CUT_THROUGH
    transparent_clocks: bool = True
    #: Transparent-clock fidelity; the paper's observed degradation under
    #: load corresponds to the enqueue-stamped (imperfect) mode.
    tc_mode: str = Switch.TC_ENQUEUE_STAMPED
    #: Host oscillators: mean skew drawn in +/- this many ppm.
    max_mean_ppm: float = 30.0
    #: Random-walk drift step per 100 ms (ppm) — sets idle-network noise.
    drift_step_ppm: float = 0.03
    #: Initial slave clock error magnitude (fs).
    initial_error_fs: int = 200 * units.US


class PtpDeployment:
    """Grandmaster + slaves + background load over one topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        streams: RandomStreams,
        master: str,
        config: Optional[PtpConfig] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.streams = streams
        self.config = config or PtpConfig()
        self.master_name = master
        self.network = PacketNetwork(
            sim,
            topology,
            switch_mode=self.config.switch_mode,
            transparent_clocks=self.config.transparent_clocks,
            tc_mode=self.config.tc_mode,
        )
        self.clocks: Dict[str, AdjustableFrequencyClock] = {}
        self.slaves: Dict[str, PtpSlave] = {}

        host_names = topology.hosts()
        if master not in host_names:
            raise ValueError(f"master {master!r} is not a host of the topology")

        for name in host_names:
            rng = streams.stream(f"ptp/skew/{name}")
            skew = RandomWalkSkew(
                mean_ppm=rng.uniform(-self.config.max_mean_ppm, self.config.max_mean_ppm),
                step_ppm=self.config.drift_step_ppm,
                step_interval_fs=100 * units.MS,
                max_excursion_ppm=2.0,
                seed=rng.getrandbits(32),
            )
            oscillator = Oscillator(
                nominal_period_fs=PHY_10G.period_fs,
                skew=skew,
                update_interval_fs=100 * units.MS,
                name=f"phc/{name}",
            )
            clock = AdjustableFrequencyClock(oscillator, name=f"phc/{name}")
            if name != master:
                error_rng = streams.stream(f"ptp/init/{name}")
                clock.set_time(
                    0,
                    error_rng.uniform(
                        -self.config.initial_error_fs, self.config.initial_error_fs
                    ),
                )
            self.clocks[name] = clock

        slave_names = [name for name in host_names if name != master]
        self.master = PtpMaster(
            sim,
            self.network,
            master,
            self.clocks[master],
            slaves=slave_names,
            sync_interval_fs=self.config.sync_interval_fs,
        )
        for name in slave_names:
            self.slaves[name] = PtpSlave(
                sim,
                self.network,
                name,
                master,
                self.clocks[name],
                rng=streams.stream(f"ptp/slave/{name}"),
                sync_interval_fs=self.config.sync_interval_fs,
            )

    # ------------------------------------------------------------------
    # Load control
    # ------------------------------------------------------------------
    def apply_load(
        self, level: str, exclude_hosts: Optional[List[str]] = None
    ) -> None:
        """Install the paper's idle/medium/heavy load on every interface.

        Each link direction gets its own independent backlog process, which
        is what makes the two PTP paths asymmetric under load.  Interfaces
        adjacent to excluded hosts stay idle (the paper spared S11's links
        in the heavy-load run).
        """
        if level not in _LOAD_FACTORIES:
            raise ValueError(f"unknown load level {level!r}; use idle/medium/heavy")
        factory = _LOAD_FACTORIES[level]
        excluded = set(exclude_hosts or [])
        index = 0
        for node in self.network.nodes.values():
            for iface in node.interfaces.values():
                touches_excluded = (
                    node.name in excluded or iface.peer_name in excluded
                )
                rng = self.streams.stream(f"ptp/load/{index}")
                index += 1
                if level == LOAD_IDLE or touches_excluded:
                    iface.virtual_load = None
                else:
                    iface.virtual_load = factory(rng)

    # ------------------------------------------------------------------
    # Lifecycle and measurement
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.master.start()

    def true_offset_fs(self, slave: str, t_fs: Optional[int] = None) -> float:
        """Slave PHC minus master PHC at simulation time ``t_fs``."""
        t = self.sim.now if t_fs is None else t_fs
        return self.slaves[slave].offset_to(self.clocks[self.master_name], t)

    def all_true_offsets_fs(self, t_fs: Optional[int] = None) -> Dict[str, float]:
        return {name: self.true_offset_fs(name, t_fs) for name in self.slaves}
