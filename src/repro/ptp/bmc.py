"""Best Master Clock algorithm (IEEE 1588 dataset comparison, simplified).

PTP nodes announce their clock quality; everyone runs the same comparison
and the best clock becomes grandmaster, the rest slaves.  If the master's
Announces stop (it died), the election re-runs and the next-best node
takes over — the failover the paper's Section 2.4.2 alludes to ("PTP picks
the most accurate clock in a network to be the grandmaster via the best
master clock algorithm").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..clocks.clock import AdjustableFrequencyClock
from ..network.packet import Host, Packet, PacketNetwork
from ..sim import units
from ..sim.engine import Simulator
from .master import PtpMaster
from .slave import PtpSlave

KIND_ANNOUNCE = "ptp_announce"
ANNOUNCE_BYTES = 90


@dataclass(frozen=True, order=True)
class ClockQuality:
    """1588 dataset-comparison fields; lower tuples win."""

    priority1: int = 128
    clock_class: int = 248
    accuracy: int = 0xFE
    variance: int = 0xFFFF
    priority2: int = 128
    identity: str = ""

    def as_tuple(self) -> Tuple:
        return (
            self.priority1,
            self.clock_class,
            self.accuracy,
            self.variance,
            self.priority2,
            self.identity,
        )


class OrdinaryClock:
    """A PTP node that can be elected master or fall back to slave."""

    ROLE_LISTENING = "listening"
    ROLE_MASTER = "master"
    ROLE_SLAVE = "slave"

    def __init__(
        self,
        sim: Simulator,
        network: PacketNetwork,
        host_name: str,
        quality: ClockQuality,
        peers: List[str],
        clock: AdjustableFrequencyClock,
        rng: random.Random,
        sync_interval_fs: int = units.SEC,
        announce_interval_fs: int = units.SEC,
        announce_timeout_intervals: int = 3,
    ) -> None:
        self.sim = sim
        self.network = network
        self.host: Host = network.host(host_name)
        self.quality = quality
        self.peers = [p for p in peers if p != host_name]
        self.clock = clock
        self.sync_interval_fs = sync_interval_fs
        self.announce_interval_fs = announce_interval_fs
        self.announce_timeout_fs = announce_timeout_intervals * announce_interval_fs
        self.role = self.ROLE_LISTENING
        self.current_master: Optional[str] = None
        self.elections = 0
        self._running = False
        #: Foreign master dataset: name -> (quality tuple, last heard fs).
        self._foreign: Dict[str, Tuple[Tuple, int]] = {}
        self.master_role = PtpMaster(
            sim, network, host_name, clock,
            slaves=self.peers, sync_interval_fs=sync_interval_fs,
        )
        self.slave_role = PtpSlave(
            sim, network, host_name, host_name, clock, rng=rng,
            sync_interval_fs=sync_interval_fs,
        )
        self.slave_role.enabled = False
        self.host.register_handler(KIND_ANNOUNCE, self._on_announce)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(0, self._announce_tick)
        # First election after one timeout so everyone's Announce lands.
        self.sim.schedule(self.announce_timeout_fs, self._evaluate)

    def stop(self) -> None:
        """Simulate this node dying (for failover tests)."""
        self._running = False
        self.master_role.stop()
        self.slave_role.enabled = False

    # ------------------------------------------------------------------
    # Announce plane
    # ------------------------------------------------------------------
    def _announce_tick(self) -> None:
        if not self._running:
            return
        # Everyone announces while listening; once roles settle, only the
        # master keeps announcing (1588's qualification behaviour).
        if self.role in (self.ROLE_LISTENING, self.ROLE_MASTER):
            for peer in self.peers:
                self.network.send(
                    self.host.name,
                    peer,
                    ANNOUNCE_BYTES,
                    KIND_ANNOUNCE,
                    {"quality": self.quality.as_tuple()},
                )
        self.sim.schedule(self.announce_interval_fs, self._announce_tick)

    def _on_announce(self, packet: Packet, first_fs: int, last_fs: int) -> None:
        if not self._running:
            return
        self._foreign[packet.src] = (tuple(packet.payload["quality"]), self.sim.now)

    # ------------------------------------------------------------------
    # Election
    # ------------------------------------------------------------------
    def _evaluate(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        alive = {
            name: quality
            for name, (quality, seen) in self._foreign.items()
            if now - seen <= self.announce_timeout_fs
        }
        candidates = dict(alive)
        candidates[self.host.name] = self.quality.as_tuple()
        best = min(candidates, key=lambda name: candidates[name])
        if best == self.host.name:
            self._become_master()
        else:
            self._become_slave(best)
        self.sim.schedule(self.announce_interval_fs, self._evaluate)

    def _become_master(self) -> None:
        if self.role is not self.ROLE_MASTER:
            self.elections += 1
            self.role = self.ROLE_MASTER
            self.current_master = self.host.name
            self.slave_role.enabled = False
            self.master_role.start()

    def _become_slave(self, master: str) -> None:
        if self.role is not self.ROLE_SLAVE or self.current_master != master:
            self.elections += 1
            self.role = self.ROLE_SLAVE
            self.current_master = master
            self.master_role.stop()
            self.slave_role.retarget(master)
            self.slave_role.enabled = True
