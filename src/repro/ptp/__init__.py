"""PTP (IEEE 1588v2) baseline: master, slaves, servo, deployment."""

from .messages import (
    DELAY_REQ_BYTES,
    DELAY_RESP_BYTES,
    EVENT_KINDS,
    FOLLOW_UP_BYTES,
    KIND_DELAY_REQ,
    KIND_DELAY_RESP,
    KIND_FOLLOW_UP,
    KIND_SYNC,
    SYNC_BYTES,
    TIMESTAMP_GRANULARITY_FS,
    quantize_timestamp,
)
from .servo import DelayFilter, PiServo, ServoAction
from .master import PtpMaster
from .slave import OffsetRecord, PtpSlave, SyncContext
from .boundary import BoundaryClock
from .bmc import ANNOUNCE_BYTES, KIND_ANNOUNCE, ClockQuality, OrdinaryClock
from .network import (
    LOAD_HEAVY,
    LOAD_IDLE,
    LOAD_MEDIUM,
    PtpConfig,
    PtpDeployment,
)

__all__ = [
    "ANNOUNCE_BYTES",
    "BoundaryClock",
    "ClockQuality",
    "DELAY_REQ_BYTES",
    "KIND_ANNOUNCE",
    "OrdinaryClock",
    "DELAY_RESP_BYTES",
    "DelayFilter",
    "EVENT_KINDS",
    "FOLLOW_UP_BYTES",
    "KIND_DELAY_REQ",
    "KIND_DELAY_RESP",
    "KIND_FOLLOW_UP",
    "KIND_SYNC",
    "LOAD_HEAVY",
    "LOAD_IDLE",
    "LOAD_MEDIUM",
    "OffsetRecord",
    "PiServo",
    "PtpConfig",
    "PtpDeployment",
    "PtpMaster",
    "PtpSlave",
    "ServoAction",
    "SYNC_BYTES",
    "SyncContext",
    "TIMESTAMP_GRANULARITY_FS",
    "quantize_timestamp",
]
