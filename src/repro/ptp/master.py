"""The PTP grandmaster (timeserver).

Periodically multicasts Sync (an event message, hardware-timestamped on
egress) followed by Follow_Up carrying the precise egress timestamp — the
two-step mode the paper's VelaSync deployment used.  Replies to every
Delay_Req with a Delay_Resp carrying the hardware ingress timestamp.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..clocks.clock import AdjustableFrequencyClock
from ..network.packet import Host, Packet, PacketNetwork
from ..sim import units
from ..sim.engine import Simulator
from . import messages as ptpmsg


class PtpMaster:
    """Grandmaster clock bound to one host of a packet network."""

    def __init__(
        self,
        sim: Simulator,
        network: PacketNetwork,
        host_name: str,
        clock: AdjustableFrequencyClock,
        slaves: Optional[List[str]] = None,
        sync_interval_fs: int = 25 * units.MS,
    ) -> None:
        self.sim = sim
        self.network = network
        self.host: Host = network.host(host_name)
        self.clock = clock
        self.slaves = list(slaves or [])
        self.sync_interval_fs = sync_interval_fs
        self.sequence = 0
        self.syncs_sent = 0
        self.delay_resps_sent = 0
        self._running = False
        self._pending_sync: Dict[int, Packet] = {}
        self.host.register_handler(ptpmsg.KIND_DELAY_REQ, self._on_delay_req)
        self.host.register_tx_hook(self._on_tx)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.sim.schedule(0, self._send_sync_round)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # Sync + Follow_Up
    # ------------------------------------------------------------------
    def _send_sync_round(self) -> None:
        if not self._running:
            return
        self.sequence += 1
        for slave in self.slaves:
            packet = self.network.send(
                self.host.name,
                slave,
                ptpmsg.SYNC_BYTES,
                ptpmsg.KIND_SYNC,
                {"seq": self.sequence},
            )
            self._pending_sync[packet.packet_id] = packet
            self.syncs_sent += 1
        self.sim.schedule(self.sync_interval_fs, self._send_sync_round)

    def _on_tx(self, packet: Packet, t_fs: int) -> None:
        """Hardware egress timestamping: emit the Follow_Up for each Sync."""
        if packet.kind != ptpmsg.KIND_SYNC:
            return
        self._pending_sync.pop(packet.packet_id, None)
        t1 = ptpmsg.quantize_timestamp(self.clock.time_at(t_fs))
        self.network.send(
            self.host.name,
            packet.dst,
            ptpmsg.FOLLOW_UP_BYTES,
            ptpmsg.KIND_FOLLOW_UP,
            {"seq": packet.payload["seq"], "t1_fs": t1},
        )

    # ------------------------------------------------------------------
    # Delay_Req handling
    # ------------------------------------------------------------------
    def _on_delay_req(self, packet: Packet, first_fs: int, last_fs: int) -> None:
        t4 = ptpmsg.quantize_timestamp(self.clock.time_at(first_fs))
        self.network.send(
            self.host.name,
            packet.src,
            ptpmsg.DELAY_RESP_BYTES,
            ptpmsg.KIND_DELAY_RESP,
            {
                "seq": packet.payload.get("seq"),
                "t4_fs": t4,
                "req_correction_fs": packet.tc_correction_fs,
            },
        )
        self.delay_resps_sent += 1
