"""A PTP slave: hardware-timestamped offset measurement plus servo.

The slave's PHC is an :class:`~repro.clocks.clock.AdjustableFrequencyClock`
driven by the host's own (skewed) oscillator.  Each Sync/Follow_Up pair
yields the master-to-slave delay sample; each Delay_Req/Delay_Resp pair
yields slave-to-master.  After transparent-clock corrections:

    ms = t2 - t1 - corr_sync        sm = t4 - t3 - corr_req
    mean_path_delay = (ms + sm) / 2       (min-filtered)
    offset_from_master = ms - mean_path_delay

The offset drives the PI servo.  Everything the paper blames for PTP's
load sensitivity lives in ``ms``/``sm`` asymmetry: queueing the TC did not
(or could not) correct.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..clocks.clock import AdjustableFrequencyClock
from ..network.packet import Host, Packet, PacketNetwork
from ..sim import units
from ..sim.engine import Simulator
from . import messages as ptpmsg
from ..discipline.base import Observation
from .servo import DelayFilter, PiServo


@dataclass
class SyncContext:
    """In-flight state for one Sync sequence number."""

    seq: int
    t2_fs: Optional[float] = None
    sync_correction_fs: float = 0.0
    t1_fs: Optional[float] = None


@dataclass
class OffsetRecord:
    """One servo input, kept for the evaluation plots."""

    time_fs: int
    offset_fs: float
    path_delay_fs: float


class PtpSlave:
    """One PTP client, synchronizing its PHC to the grandmaster."""

    def __init__(
        self,
        sim: Simulator,
        network: PacketNetwork,
        host_name: str,
        master_name: str,
        clock: AdjustableFrequencyClock,
        rng: random.Random,
        sync_interval_fs: int = 25 * units.MS,
        servo: Optional[PiServo] = None,
        delay_filter: Optional[DelayFilter] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.host: Host = network.host(host_name)
        self.master_name = master_name
        self.clock = clock
        self.rng = rng
        self.sync_interval_fs = sync_interval_fs
        # Imported here, not at module level: discipline.classic imports
        # this package back (it wraps PiServo).
        from ..discipline.classic import PiServoDiscipline

        self.servo = servo or PiServo()
        #: The servo re-hosted behind the common Discipline interface
        #: (:mod:`repro.discipline`); it wraps — not replaces — the same
        #: ``self.servo`` object, so behavior and counters are unchanged.
        self.discipline = PiServoDiscipline(
            servo=self.servo, name=f"ptp/{host_name}"
        )
        self.delay_filter = delay_filter or DelayFilter()
        self.records: List[OffsetRecord] = []
        #: BMC support: a disabled slave ignores all PTP traffic, and the
        #: master it follows may be retargeted after an election.
        self.enabled = True
        self._context: Optional[SyncContext] = None
        self._pending_t3: Optional[float] = None
        self._pending_req_seq: Optional[int] = None
        self._last_servo_fs: Optional[int] = None
        self.syncs_seen = 0
        self.exchanges_completed = 0
        self.host.register_handler(ptpmsg.KIND_SYNC, self._on_sync)
        self.host.register_handler(ptpmsg.KIND_FOLLOW_UP, self._on_follow_up)
        self.host.register_handler(ptpmsg.KIND_DELAY_RESP, self._on_delay_resp)
        self.host.register_tx_hook(self._on_tx)

    # ------------------------------------------------------------------
    # Sync path (master -> slave)
    # ------------------------------------------------------------------
    def retarget(self, master_name: str) -> None:
        """Follow a different master (after a BMC election)."""
        self.master_name = master_name
        self._context = None
        self._pending_t3 = None
        self._pending_req_seq = None

    def _on_sync(self, packet: Packet, first_fs: int, last_fs: int) -> None:
        if not self.enabled or packet.src != self.master_name:
            return
        self.syncs_seen += 1
        self._context = SyncContext(
            seq=packet.payload["seq"],
            t2_fs=ptpmsg.quantize_timestamp(self.clock.time_at(first_fs)),
            sync_correction_fs=packet.tc_correction_fs,
        )

    def _on_follow_up(self, packet: Packet, first_fs: int, last_fs: int) -> None:
        context = self._context
        if not self.enabled or packet.src != self.master_name:
            return
        if context is None or packet.payload["seq"] != context.seq:
            return
        context.t1_fs = packet.payload["t1_fs"]
        # Kick off the delay measurement for this round, with a small
        # random delay so slaves don't synchronize their Delay_Reqs.
        jitter_fs = self.rng.randint(0, max(1, self.sync_interval_fs // 4))
        self.sim.schedule(jitter_fs, self._send_delay_req, context.seq)

    # ------------------------------------------------------------------
    # Delay path (slave -> master)
    # ------------------------------------------------------------------
    def _send_delay_req(self, seq: int) -> None:
        self._pending_req_seq = seq
        self.network.send(
            self.host.name,
            self.master_name,
            ptpmsg.DELAY_REQ_BYTES,
            ptpmsg.KIND_DELAY_REQ,
            {"seq": seq},
        )

    def _on_tx(self, packet: Packet, t_fs: int) -> None:
        if packet.kind == ptpmsg.KIND_DELAY_REQ:
            self._pending_t3 = ptpmsg.quantize_timestamp(self.clock.time_at(t_fs))

    def _on_delay_resp(self, packet: Packet, first_fs: int, last_fs: int) -> None:
        context = self._context
        if not self.enabled or packet.src != self.master_name:
            return
        if (
            context is None
            or context.t1_fs is None
            or context.t2_fs is None
            or self._pending_t3 is None
            or packet.payload.get("seq") != self._pending_req_seq
        ):
            return
        t1 = context.t1_fs
        t2 = context.t2_fs
        t3 = self._pending_t3
        t4 = packet.payload["t4_fs"]
        ms_fs = (t2 - t1) - context.sync_correction_fs
        sm_fs = (t4 - t3) - packet.payload.get("req_correction_fs", 0.0)
        raw_delay = (ms_fs + sm_fs) / 2.0
        path_delay = self.delay_filter.update(max(0.0, raw_delay))
        offset_fs = ms_fs - path_delay
        self._apply_servo(offset_fs, path_delay)
        self.exchanges_completed += 1
        self._context = None
        self._pending_t3 = None
        self._pending_req_seq = None

    # ------------------------------------------------------------------
    # Servo application
    # ------------------------------------------------------------------
    def _apply_servo(self, offset_fs: float, path_delay_fs: float) -> None:
        now = self.sim.now
        interval = (
            now - self._last_servo_fs
            if self._last_servo_fs is not None
            else self.sync_interval_fs
        )
        self._last_servo_fs = now
        action = self.discipline.observe(
            Observation(
                time_fs=now,
                offset_fs=offset_fs,
                interval_fs=max(interval, 1),
                delay_fs=path_delay_fs,
            )
        )
        if action.kind == "step":
            self.clock.step(now, action.step_fs)
        else:
            self.clock.slew(now, action.freq_adj)
        self.records.append(
            OffsetRecord(time_fs=now, offset_fs=offset_fs, path_delay_fs=path_delay_fs)
        )

    def offset_to(self, reference: AdjustableFrequencyClock, t_fs: int) -> float:
        """True offset of this slave's PHC to ``reference`` at ``t_fs``."""
        return self.clock.time_at(t_fs) - reference.time_at(t_fs)
