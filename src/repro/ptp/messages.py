"""IEEE 1588v2 (PTP) message definitions, as packet kinds and sizes.

We model the two-step flow the paper's testbed used (Timekeeper with a
VelaSync grandmaster): Sync + Follow_Up multicast from the master,
Delay_Req / Delay_Resp per slave.  Sync and Delay_Req are *event* messages
(hardware-timestamped, corrected by transparent clocks); Follow_Up and
Delay_Resp are *general* messages.
"""

from __future__ import annotations

KIND_SYNC = "ptp_sync"
KIND_FOLLOW_UP = "ptp_followup"
KIND_DELAY_REQ = "ptp_delay_req"
KIND_DELAY_RESP = "ptp_delay_resp"

#: Event messages: the ones transparent clocks correct.
EVENT_KINDS = (KIND_SYNC, KIND_DELAY_REQ)

#: On-the-wire sizes (PTP header 34 B + body, inside UDP/IP/Ethernet).
SYNC_BYTES = 86
FOLLOW_UP_BYTES = 86
DELAY_REQ_BYTES = 86
DELAY_RESP_BYTES = 96

#: Hardware timestamping granularity of the model NIC/PHC (ConnectX-3
#: class hardware timestamps at ~1/156.25 MHz or better; we use 8 ns).
TIMESTAMP_GRANULARITY_FS = 8_000_000


def quantize_timestamp(reading_fs: float, granularity_fs: int = TIMESTAMP_GRANULARITY_FS) -> float:
    """Quantize a clock reading to the hardware timestamp granularity."""
    return (int(reading_fs) // granularity_fs) * granularity_fs
