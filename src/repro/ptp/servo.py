"""Clock servo for PTP slaves: sample filtering plus a PI controller.

Commercial PTP stacks (the paper used FSMLabs Timekeeper) smooth and
filter aggressively: path-delay samples go through a minimum/median filter
so queueing spikes don't masquerade as clock offset, and the surviving
offset drives a PI loop that slews the PHC frequency (stepping only on
gross error).  This module implements that pipeline; its parameters default
to linuxptp-like constants scaled by the sync interval.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..sim import units


class DelayFilter:
    """Minimum-of-window filter for mean-path-delay samples.

    Queueing can only *add* delay, so the windowed minimum tracks the true
    propagation floor far better than the mean — the classic PTP trick.
    """

    def __init__(self, window: int = 16) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self._samples: Deque[float] = deque(maxlen=window)

    def update(self, delay_fs: float) -> float:
        self._samples.append(delay_fs)
        return min(self._samples)

    @property
    def current(self) -> Optional[float]:
        return min(self._samples) if self._samples else None


@dataclass
class ServoAction:
    """What the servo decided for one offset sample."""

    kind: str  # "step" or "slew"
    #: For steps: the phase correction (fs).  For slews: new freq adj.
    value: float
    offset_fs: float


class PiServo:
    """Proportional-integral frequency servo with a step threshold."""

    def __init__(
        self,
        kp: float = 0.7,
        ki: float = 0.3,
        step_threshold_fs: float = 10 * units.US,
        panic_threshold_fs: float = 10 * units.MS,
        max_freq_adj: float = 500e-6,
        allow_first_step: bool = True,
    ) -> None:
        self.kp = kp
        self.ki = ki
        self.step_threshold_fs = step_threshold_fs
        #: After the first step the servo only slews — chasing queueing
        #: noise with phase steps is exactly the failure mode real servos
        #: avoid — unless the offset exceeds this panic threshold.
        self.panic_threshold_fs = panic_threshold_fs
        self.max_freq_adj = max_freq_adj
        self.allow_first_step = allow_first_step
        self._integral = 0.0  # accumulated fractional-frequency correction
        self._synced_once = False
        self.steps = 0
        self.slews = 0

    def sample(self, offset_fs: float, interval_fs: float) -> ServoAction:
        """Digest one measured offset (slave minus master).

        Returns the action the caller must apply to its clock: a phase
        step of ``-offset`` or a new frequency adjustment.
        """
        if interval_fs <= 0:
            raise ValueError("interval must be positive")
        first = not self._synced_once
        self._synced_once = True
        step_now = (
            first
            and self.allow_first_step
            and abs(offset_fs) > self.step_threshold_fs
        ) or abs(offset_fs) > self.panic_threshold_fs
        if step_now:
            self.steps += 1
            self._integral = 0.0
            return ServoAction(kind="step", value=-offset_fs, offset_fs=offset_fs)
        self.slews += 1
        rate_error = offset_fs / interval_fs  # dimensionless
        self._integral += self.ki * rate_error
        self._integral = max(-self.max_freq_adj, min(self.max_freq_adj, self._integral))
        adj = -(self.kp * rate_error + self._integral)
        adj = max(-self.max_freq_adj, min(self.max_freq_adj, adj))
        return ServoAction(kind="slew", value=adj, offset_fs=offset_fs)
