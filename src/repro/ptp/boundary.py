"""PTP Boundary Clocks (paper Section 2.4.2).

A boundary clock (BC) is a switch-resident PTP node: a *slave* toward the
grandmaster on its uplink and a *master* toward its downstream clients.
BCs make PTP scale (the grandmaster only serves the first level) — at the
cost the paper calls out: "precision errors from Boundary clocks can be
cascaded to low-level components of the timing hierarchy tree, and can
significantly impact the precision overall [Jasperneite et al.]".

The cascade arises naturally here: each BC disciplines its own PHC from
its upstream's already-noisy PHC and then serves that doubly-noisy time
downstream.  The :func:`run_cascade` experiment measures offset growth
with hierarchy depth.
"""

from __future__ import annotations

import random
from typing import List

from ..clocks.clock import AdjustableFrequencyClock
from ..network.packet import PacketNetwork
from ..sim import units
from ..sim.engine import Simulator
from .master import PtpMaster
from .slave import PtpSlave


class BoundaryClock:
    """Slave upstream + master downstream, one disciplined clock.

    Both roles bind to the same host; their handler sets are disjoint
    (the slave consumes Sync/Follow_Up/Delay_Resp, the master serves
    Delay_Req), so they coexist on one packet-network endpoint.
    """

    def __init__(
        self,
        sim: Simulator,
        network: PacketNetwork,
        host_name: str,
        upstream_master: str,
        downstream: List[str],
        clock: AdjustableFrequencyClock,
        rng: random.Random,
        sync_interval_fs: int = units.SEC,
    ) -> None:
        self.sim = sim
        self.host_name = host_name
        self.clock = clock
        self.slave = PtpSlave(
            sim,
            network,
            host_name,
            upstream_master,
            clock,
            rng=rng,
            sync_interval_fs=sync_interval_fs,
        )
        self.master = PtpMaster(
            sim,
            network,
            host_name,
            clock,
            slaves=list(downstream),
            sync_interval_fs=sync_interval_fs,
        )

    def start(self) -> None:
        """Begin serving downstream (upstream sync is handler-driven)."""
        self.master.start()

    def stop(self) -> None:
        self.master.stop()
        self.slave.enabled = False
