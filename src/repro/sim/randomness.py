"""Named, reproducible random streams.

Every stochastic component of the simulation (oscillator drift, CDC FIFO,
traffic arrivals, PCIe latency, ...) draws from its *own* named stream so
that adding a new component, or reordering event execution, never perturbs
the random numbers seen by existing components.  Streams are derived from a
single root seed with SHA-256, so a run is fully determined by
``(root_seed, stream names used)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                f"{self.root_seed}/{name}".encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:16], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.root_seed}/fork/{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:16], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(root_seed={self.root_seed}, streams={len(self._streams)})"
