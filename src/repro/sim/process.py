"""Generator-based processes on top of the event engine.

A *process* is a Python generator that yields the number of femtoseconds to
sleep before being resumed.  Yielding ``0`` reschedules the process at the
current time (after already-queued events).  Returning (or raising
``StopIteration``) ends the process.

This is a convenience layer for sequential behaviours such as traffic
generators; protocol state machines use plain callbacks instead.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .engine import Event, SimulationError, Simulator

ProcessGenerator = Generator[int, None, Any]


class Process:
    """Drives a generator by scheduling its yielded delays on a simulator."""

    def __init__(self, sim: Simulator, generator: ProcessGenerator, name: str = "") -> None:
        self.sim = sim
        self.name = name or repr(generator)
        self._generator = generator
        self._event: Optional[Event] = None
        self.finished = False
        self._event = sim.schedule(0, self._resume)

    def _resume(self) -> None:
        self._event = None
        try:
            delay = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        if not isinstance(delay, int) or delay < 0:
            raise SimulationError(
                f"process {self.name!r} yielded invalid delay {delay!r}"
            )
        self._event = self.sim.schedule(delay, self._resume)

    def stop(self) -> None:
        """Cancel the process; it will not be resumed again."""
        if self._event is not None:
            self.sim.cancel(self._event)
            self._event = None
        self.finished = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"
