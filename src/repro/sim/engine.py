"""A deterministic discrete-event simulation engine.

The engine is a classic event-queue simulator:

* time is an integer number of femtoseconds (see :mod:`repro.sim.units`);
* events are callbacks scheduled at absolute times;
* ties are broken by insertion order, which makes runs deterministic;
* events may be cancelled, which marks them dead in place (lazy deletion).

The engine knows nothing about networks or clocks; everything above it is
built from plain callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation engine."""


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code holds on to them only to call
    :meth:`Simulator.cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state} {self.fn!r}>"


class Simulator:
    """Event-driven simulator with femtosecond-resolution integer time."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Event] = []
        self._pending = 0
        self._running = False

    @property
    def now(self) -> int:
        """Current simulation time in femtoseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued."""
        return self._pending

    def schedule(self, delay_fs: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_fs`` femtoseconds from now."""
        if delay_fs < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_fs})")
        return self.schedule_at(self._now + delay_fs, fn, *args)

    def schedule_at(self, time_fs: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time_fs``."""
        if time_fs < self._now:
            raise SimulationError(
                f"cannot schedule at {time_fs} fs; current time is {self._now} fs"
            )
        event = Event(time_fs, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._pending += 1
        return event

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (idempotent, ``None``-safe)."""
        if event is not None and not event.cancelled:
            event.cancelled = True
            self._pending -= 1

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._pending -= 1
            self._now = event.time
            event.fn(*event.args)
            return True
        return False

    def run_until(self, time_fs: int) -> None:
        """Run every event with ``event.time <= time_fs``; advance to it.

        Time is left at exactly ``time_fs`` even if the queue drains early,
        so periodic observers see a consistent final timestamp.
        """
        if time_fs < self._now:
            raise SimulationError(
                f"run_until({time_fs}) is in the past (now={self._now})"
            )
        while self._queue:
            event = self._queue[0]
            if event.time > time_fs:
                break
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._pending -= 1
            self._now = event.time
            event.fn(*event.args)
        self._now = time_fs

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``max_events``); return count run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count
