"""A deterministic discrete-event simulation engine.

The engine is a classic event-queue simulator:

* time is an integer number of femtoseconds (see :mod:`repro.sim.units`);
* events are callbacks scheduled at absolute times;
* ties are broken by insertion order, which makes runs deterministic;
* events may be cancelled, which marks them dead in place (lazy deletion).

The engine knows nothing about networks or clocks; everything above it is
built from plain callbacks.

Performance notes (this module is the hottest loop in the repo):

* The heap holds plain ``(time, seq, fn, args, event)`` tuples, so
  :mod:`heapq` sift operations compare C-level ints instead of calling
  ``Event.__lt__``.  ``seq`` is unique per event, so a comparison never
  reaches the third element, and dispatch reads the callback straight
  from the tuple instead of through two attribute loads.
* ``run_until`` binds the queue, ``heappop`` and the dispatch loop state
  to locals; attribute lookups in the loop are kept to the event being
  dispatched.
* Cancelled events stay in the heap (lazy deletion) but are counted;
  when they outnumber the live entries the heap is compacted in one
  O(n) ``heapify`` pass, so cancel-heavy workloads (e.g. beacon
  timeouts rescheduled every interval) cannot bloat the queue.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Compact the heap only past this size; below it bloat is irrelevant.
_COMPACT_MIN_QUEUE = 64


class SimulationError(RuntimeError):
    """Raised for invalid use of the simulation engine."""


class Event:
    """A scheduled callback.

    Instances are created by :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at`; user code holds on to them only to call
    :meth:`Simulator.cancel`.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time} seq={self.seq} {state} {self.fn!r}>"


class _Uncancellable:
    """Shared cancel-state placeholder for fire-and-forget events.

    ``post_at`` entries carry this singleton where cancellable entries
    carry their :class:`Event`, so the dispatch loop's ``cancelled``
    check works uniformly without allocating a handle per event.
    """

    __slots__ = ()
    cancelled = False


_UNCANCELLABLE = _Uncancellable()


class Simulator:
    """Event-driven simulator with femtosecond-resolution integer time."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[Tuple[int, int, Callable[..., Any], tuple, Event]] = []
        self._pending = 0
        self._cancelled_in_queue = 0
        #: Optional dispatch profiler (``repro.telemetry.DispatchProfile``):
        #: any object with a ``count(fn)`` method.  ``None`` keeps the
        #: dispatch loops on a branch that never touches it.
        self.profile: Optional[Any] = None

    @property
    def now(self) -> int:
        """Current simulation time in femtoseconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of live (not cancelled) events still queued."""
        return self._pending

    def schedule(self, delay_fs: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay_fs`` femtoseconds from now."""
        if delay_fs < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_fs})")
        time_fs = self._now + delay_fs
        seq = self._seq
        self._seq = seq + 1
        event = Event(time_fs, seq, fn, args)
        heapq.heappush(self._queue, (time_fs, seq, fn, args, event))
        self._pending += 1
        return event

    def schedule_at(self, time_fs: int, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time_fs``."""
        if time_fs < self._now:
            raise SimulationError(
                f"cannot schedule at {time_fs} fs; current time is {self._now} fs"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time_fs, seq, fn, args)
        heapq.heappush(self._queue, (time_fs, seq, fn, args, event))
        self._pending += 1
        return event

    def post_at(self, time_fs: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancel handle is created.

        Ordering is identical to :meth:`schedule_at` (the event consumes a
        ``seq`` the same way); the only difference is that the event cannot
        be cancelled, which lets hot paths skip one object allocation per
        message.
        """
        if time_fs < self._now:
            raise SimulationError(
                f"cannot schedule at {time_fs} fs; current time is {self._now} fs"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time_fs, seq, fn, args, _UNCANCELLABLE))
        self._pending += 1

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a previously scheduled event (idempotent, ``None``-safe)."""
        if event is not None and not event.cancelled:
            event.cancelled = True
            self._pending -= 1
            self._cancelled_in_queue += 1
            queue = self._queue
            if (
                len(queue) > _COMPACT_MIN_QUEUE
                and self._cancelled_in_queue * 2 > len(queue)
            ):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (deterministic: seq is a
        total order, so the rebuilt heap pops in exactly the same sequence
        the lazy-deletion heap would have).  Mutates the list in place:
        ``run_until`` holds a local reference to it across callbacks."""
        queue = self._queue
        queue[:] = [entry for entry in queue if not entry[4].cancelled]
        heapq.heapify(queue)
        self._cancelled_in_queue = 0

    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue is empty."""
        queue = self._queue
        pop = heapq.heappop
        profile = self.profile
        while queue:
            time_fs, _seq, fn, args, event = pop(queue)
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            self._pending -= 1
            self._now = time_fs
            if profile is not None:
                profile.count(fn)
            fn(*args)
            return True
        return False

    def run_until(self, time_fs: int) -> None:
        """Run every event with ``event.time <= time_fs``; advance to it.

        Time is left at exactly ``time_fs`` even if the queue drains early,
        so periodic observers see a consistent final timestamp.
        """
        if time_fs < self._now:
            raise SimulationError(
                f"run_until({time_fs}) is in the past (now={self._now})"
            )
        queue = self._queue
        pop = heapq.heappop
        profile = self.profile
        if profile is None:
            # Hot path: kept free of any telemetry reads so enabling the
            # feature elsewhere cannot slow an unprofiled run.
            while queue:
                entry = queue[0]
                when = entry[0]
                if when > time_fs:
                    break
                pop(queue)
                if entry[4].cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                self._pending -= 1
                self._now = when
                entry[2](*entry[3])
        else:
            count = profile.count
            while queue:
                entry = queue[0]
                when = entry[0]
                if when > time_fs:
                    break
                pop(queue)
                if entry[4].cancelled:
                    self._cancelled_in_queue -= 1
                    continue
                self._pending -= 1
                self._now = when
                count(entry[2])
                entry[2](*entry[3])
        self._now = time_fs

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue is empty (or ``max_events``); return count run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def take_seq(self) -> int:
        """Allocate (and consume) the next event sequence number.

        External co-simulators (see :class:`MacroTickSimulator`) use this to
        give their virtual events sequence numbers from the *same* counter
        heap events draw from, so a merged ``(time, seq)`` order is a total
        order identical to the one a pure heap run would produce.
        """
        seq = self._seq
        self._seq = seq + 1
        return seq


class MacroTickSimulator(Simulator):
    """A :class:`Simulator` that can merge an external virtual-event source.

    The source (``repro.fastpath.FastpathCoordinator``) maintains its own
    queue of *virtual* events — batched DTP port work that never touches the
    engine heap.  ``run_until`` interleaves the two queues by ``(time, seq)``;
    because the source draws its sequence numbers from :meth:`take_seq` at
    exactly the points the scalar implementation would have scheduled real
    events, the merged order is bit-identical to a scalar run.

    With no source attached this class is exactly :class:`Simulator` (it
    falls through to the inherited loops), so nothing slows down if a
    batched backend is requested but nothing promotes.

    The *macro-tick fast-forward* falls out of the merge: across a window
    where the heap holds no event, the loop leaps directly from virtual
    event to virtual event and the heap is never consulted beyond one peek.
    """

    def __init__(self) -> None:
        super().__init__()
        #: External virtual-event source: any object with ``next_key()``
        #: (returns ``(time_fs, seq)`` or None) and ``dispatch_next()``.
        self.fastpath: Optional[Any] = None

    def attach_fastpath(self, source: Any) -> None:
        if self.fastpath is not None and self.fastpath is not source:
            raise SimulationError("a fastpath source is already attached")
        self.fastpath = source

    def step(self) -> bool:
        source = self.fastpath
        if source is None:
            return super().step()
        vkey = source.next_key()
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[4].cancelled:
                heapq.heappop(queue)
                self._cancelled_in_queue -= 1
                continue
            if vkey is not None and vkey < (entry[0], entry[1]):
                break
            heapq.heappop(queue)
            self._pending -= 1
            self._now = entry[0]
            if self.profile is not None:
                self.profile.count(entry[2])
            entry[2](*entry[3])
            return True
        if vkey is None:
            return False
        self._now = vkey[0]
        source.dispatch_next()
        return True

    def run_until(self, time_fs: int) -> None:
        source = self.fastpath
        if source is None:
            return super().run_until(time_fs)
        # The merged loop lives on the coordinator, which owns the virtual
        # heap and inlines the batched stage bodies around it.
        source.run_merged(time_fs)
