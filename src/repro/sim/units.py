"""Time and rate units for the simulator.

All simulation time is kept as **integer femtoseconds** so that clock-tick
arithmetic is exact and runs are bit-for-bit reproducible.  A 10 GbE clock
tick (6.4 ns) is exactly 6,400,000 fs, and a +/-100 ppm frequency deviation
is still resolvable to better than one part in 10^9 of a tick.
"""

from __future__ import annotations

# Base unit: 1 femtosecond.
FS = 1
PS = 1_000 * FS
NS = 1_000 * PS
US = 1_000 * NS
MS = 1_000 * US
SEC = 1_000 * MS

#: Nominal 10 GbE PCS clock period (1 / 156.25 MHz) in femtoseconds.
TICK_10G_FS = 6_400_000

#: Speed of light in an optical fiber, expressed as propagation delay.
#: The paper uses 5 ns per meter (2/3 c).
FIBER_DELAY_FS_PER_M = 5 * NS


def fs_from_seconds(seconds: float) -> int:
    """Convert seconds (float) to integer femtoseconds."""
    return round(seconds * SEC)


def seconds_from_fs(fs: int) -> float:
    """Convert integer femtoseconds to seconds (float)."""
    return fs / SEC


def fs_from_ns(ns: float) -> int:
    """Convert nanoseconds (possibly fractional) to integer femtoseconds."""
    return round(ns * NS)


def ns_from_fs(fs: int) -> float:
    """Convert integer femtoseconds to nanoseconds (float)."""
    return fs / NS


def us_from_fs(fs: int) -> float:
    """Convert integer femtoseconds to microseconds (float)."""
    return fs / US


def ppm_to_fraction(ppm: float) -> float:
    """Parts-per-million to a plain fraction (100 ppm -> 1e-4)."""
    return ppm * 1e-6


def period_fs_for_ppm(nominal_period_fs: int, ppm: float) -> int:
    """Actual period of an oscillator whose frequency deviates by ``ppm``.

    A *positive* ppm means the oscillator runs fast, i.e. its period is
    shorter than nominal.  The result is rounded to an integer femtosecond;
    at 6.4 ns nominal the rounding error is below 1.6e-7 ppm.
    """
    return max(1, round(nominal_period_fs / (1.0 + ppm_to_fraction(ppm))))
