"""Discrete-event simulation engine (femtosecond-resolution, deterministic)."""

from .engine import Event, SimulationError, Simulator
from .process import Process
from .randomness import RandomStreams
from . import units

__all__ = [
    "Event",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "units",
]
