"""The EV_* schema, its generated doc table, and the doc stay in lockstep."""

import os
import re

from repro.telemetry import events
from repro.telemetry.events import (
    EVENT_SCHEMA,
    KIND_NAMES,
    schema_markdown_lines,
)

DOC_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "docs", "OBSERVABILITY.md"
)
BEGIN = "<!-- BEGIN GENERATED EVENT SCHEMA (do not edit by hand) -->"
END = "<!-- END GENERATED EVENT SCHEMA -->"


def test_schema_covers_every_event_constant():
    constants = {
        value
        for name, value in vars(events).items()
        if name.startswith("EV_") and isinstance(value, int)
    }
    assert constants, "no EV_* constants found"
    assert set(EVENT_SCHEMA) == constants
    assert set(KIND_NAMES) == constants


def test_schema_entries_are_complete():
    for code, entry in EVENT_SCHEMA.items():
        assert len(entry) == 3, f"EV code {code} needs (subject, a, b)"
        assert all(isinstance(part, str) and part for part in entry)


def test_markdown_table_shape():
    lines = schema_markdown_lines()
    assert lines[0].startswith("| code | name |")
    assert lines[1].startswith("|---")
    assert len(lines) == 2 + len(EVENT_SCHEMA)
    # Codes appear in ascending order.
    codes = [int(line.split("|")[1]) for line in lines[2:]]
    assert codes == sorted(EVENT_SCHEMA)


def test_doc_block_matches_generator():
    with open(DOC_PATH, "r", encoding="utf-8") as handle:
        doc = handle.read()
    match = re.search(re.escape(BEGIN) + r"\n(.*?)\n" + re.escape(END), doc, re.S)
    assert match, "generation markers missing from docs/OBSERVABILITY.md"
    doc_lines = match.group(1).splitlines()
    assert doc_lines == schema_markdown_lines(), (
        "docs/OBSERVABILITY.md event table is stale; regenerate it from "
        "repro.telemetry.events.schema_markdown_lines()"
    )
