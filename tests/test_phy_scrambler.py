"""Unit and property tests for the Clause 49 scrambler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.scrambler import Scrambler, disparity, word_bits


def test_scramble_descramble_roundtrip_same_state():
    tx = Scrambler(state=0x2AAAAAAAAAAAAAA)
    rx = Scrambler(state=0x2AAAAAAAAAAAAAA)
    word = 0xDEADBEEF12345678
    assert rx.descramble_word(tx.scramble_word(word)) == word


def test_descrambler_self_synchronizes():
    """After 58 bits, a receiver with the wrong state decodes correctly."""
    tx = Scrambler(state=(1 << 58) - 1)
    rx = Scrambler(state=0)  # totally wrong initial state
    # One garbage word flushes the register.
    rx.descramble_word(tx.scramble_word(0xFFFFFFFFFFFFFFFF))
    word = 0x0123456789ABCDEF
    assert rx.descramble_word(tx.scramble_word(word)) == word


def test_scrambled_idle_is_not_all_zeros():
    """The whole point: all-zero idles leave the line DC-balanced."""
    tx = Scrambler()
    scrambled = tx.scramble_word(0)
    assert scrambled != 0


def test_scrambled_output_roughly_balanced():
    tx = Scrambler()
    ones = 0
    total = 0
    for _ in range(200):
        word = tx.scramble_word(0)  # worst case input: constant zeros
        ones += sum(word_bits(word, 64))
        total += 64
    assert 0.4 < ones / total < 0.6


def test_dtp_payload_stays_balanced():
    """Embedding DTP counters does not unbalance the line (Section 4.4)."""
    tx = Scrambler()
    ones = 0
    total = 0
    for counter in range(0, 20000, 100):
        word = tx.scramble_word((0b010 << 53) | counter)
        ones += sum(word_bits(word, 64))
        total += 64
    assert 0.45 < ones / total < 0.55


def test_disparity_helper():
    assert disparity([1, 1, 1, 1]) == 4
    assert disparity([0, 0, 0, 0]) == -4
    assert disparity([1, 0, 1, 0]) == 0


def test_word_bits_lsb_first():
    assert word_bits(0b101, 4) == [1, 0, 1, 0]


@given(word=st.integers(min_value=0, max_value=(1 << 64) - 1))
@settings(max_examples=100, deadline=None)
def test_property_roundtrip_any_word(word):
    tx = Scrambler(state=123456789)
    rx = Scrambler(state=123456789)
    assert rx.descramble_word(tx.scramble_word(word)) == word


@given(words=st.lists(st.integers(min_value=0, max_value=(1 << 64) - 1), min_size=2, max_size=6))
@settings(max_examples=50, deadline=None)
def test_property_roundtrip_streams(words):
    tx = Scrambler(state=7)
    rx = Scrambler(state=7)
    for word in words:
        assert rx.descramble_word(tx.scramble_word(word)) == word
