"""Resilient campaigns: parity with plain runs, resume, kill-resume.

The acceptance contract this file pins down:

* a supervised campaign with no failures returns exactly what
  :func:`~repro.faultlab.campaign.run_campaign` returns (same digest);
* a campaign interrupted at any point and resumed from its checkpoint
  journal produces sha256-identical metrics artifacts and result
  ordering to a same-seed uninterrupted run — serial and ``--jobs N``;
* a scenario that fails keeps failing is quarantined with a structured
  failure report and a failure flight artifact, while every other
  scenario's metrics survive.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.faultlab import (
    metrics_digest,
    run_campaign,
    run_resilient_campaign,
)
from repro.resilience import SupervisorPolicy
from repro.sim import units
from repro.telemetry import load_flight
from repro.telemetry.export import file_sha256

REPO_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _specs():
    return [
        {
            "name": "baseline",
            "topology": {"kind": "chain", "hosts": 3},
            "duration_fs": 400 * units.US,
            "faults": [],
        },
        {
            "name": "flap",
            "topology": {"kind": "chain", "hosts": 3},
            "duration_fs": 500 * units.US,
            "faults": [
                {"kind": "link-flap", "a": "n0", "b": "n1",
                 "start_fs": 100 * units.US, "down_every_fs": 150 * units.US,
                 "down_for_fs": 30 * units.US, "flaps": 2},
            ],
        },
        {
            "name": "partition",
            "topology": {"kind": "chain", "hosts": 3},
            "duration_fs": 400 * units.US,
            "faults": [
                {"kind": "partition", "a": "n1", "b": "n2",
                 "down_at_fs": 100 * units.US, "up_at_fs": 200 * units.US},
            ],
        },
    ]


def _bad_spec():
    # Validated inside the worker, so it exercises the exception path.
    return {
        "name": "broken",
        "topology": {"kind": "moebius"},
        "duration_fs": 100 * units.US,
    }


class TestParityWithPlainCampaign:
    def test_same_results_and_digest(self):
        plain = run_campaign(_specs(), base_seed=3, jobs=1)
        resilient, report = run_resilient_campaign(_specs(), base_seed=3, jobs=2)
        assert resilient == plain
        assert metrics_digest(resilient) == metrics_digest(plain)
        assert report["failed"] == 0
        assert report["tasks"] == 3

    def test_serial_supervised_matches(self):
        plain = run_campaign(_specs(), base_seed=3, jobs=1)
        resilient, _report = run_resilient_campaign(_specs(), base_seed=3, jobs=1)
        assert resilient == plain


class TestJournalResume:
    def test_resume_from_partial_journal(self, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        full, _ = run_resilient_campaign(
            _specs(), base_seed=3, jobs=2, journal_path=journal
        )
        # Simulate an interruption that lost the last two completions.
        with open(journal) as handle:
            lines = handle.read().splitlines()
        with open(journal, "w") as handle:
            handle.write("\n".join(lines[:2]) + "\n")  # header + 1 entry
        resumed, report = run_resilient_campaign(
            _specs(), base_seed=3, jobs=2, journal_path=journal
        )
        assert resumed == full
        assert report["from_journal"] == 1

    def test_resumed_artifacts_byte_identical(self, tmp_path):
        ref_dir = str(tmp_path / "ref")
        res_dir = str(tmp_path / "res")
        journal = str(tmp_path / "j.jsonl")
        run_resilient_campaign(
            _specs(), base_seed=3, jobs=1, metrics_dir=ref_dir
        )
        # Interrupted run: only the first scenario completes...
        run_resilient_campaign(
            _specs()[:1], base_seed=3, jobs=1,
            metrics_dir=res_dir, journal_path=journal,
        )
        # ... the resumed run skips it and completes the rest.
        resumed, report = run_resilient_campaign(
            _specs(), base_seed=3, jobs=1,
            metrics_dir=res_dir, journal_path=journal,
        )
        assert report["from_journal"] == 1
        for name in ("baseline", "flap", "partition"):
            for suffix in ("metrics.json", "prom"):
                ref = os.path.join(ref_dir, f"{name}.{suffix}")
                res = os.path.join(res_dir, f"{name}.{suffix}")
                assert file_sha256(ref) == file_sha256(res), (name, suffix)

    def test_seed_mismatch_rejected(self, tmp_path):
        from repro.resilience import JournalError

        journal = str(tmp_path / "j.jsonl")
        run_resilient_campaign(
            _specs()[:1], base_seed=3, jobs=1, journal_path=journal
        )
        with pytest.raises(JournalError, match="different campaign"):
            run_resilient_campaign(
                _specs()[:1], base_seed=4, jobs=1, journal_path=journal
            )


class TestGracefulDegradation:
    def test_poison_scenario_partial_results(self, tmp_path):
        flight_dir = str(tmp_path / "flight")
        plain_flight_dir = str(tmp_path / "plain_flight")
        specs = _specs()[:2] + [_bad_spec()]
        results, report = run_resilient_campaign(
            specs, base_seed=3, jobs=2, flight_dir=flight_dir,
            policy=SupervisorPolicy(max_attempts=2, base_seed=3),
        )
        # The two healthy scenarios are intact and unchanged (a flight dir
        # turns telemetry on, so the plain reference gets one too)...
        plain = run_campaign(
            _specs()[:2], base_seed=3, jobs=1, flight_dir=plain_flight_dir
        )
        assert results == plain
        # ... the poison one is quarantined with a structured report...
        assert report["failed"] == 1
        assert report["quarantined"] == ["broken"]
        assert report["failures_by_kind"]["exception"] == 2
        assert any(
            "unknown topology kind" in failure["detail"]
            for failure in report["failures"]
        )
        # ... and the failure triggered a flight-recorder artifact.
        flight = load_flight(
            os.path.join(flight_dir, "broken.failure.flight.jsonl")
        )
        assert flight.header["scenario"] == "broken"
        assert flight.context["reason"] == "supervisor-quarantine"
        assert flight.context["failures"]

    def test_report_is_canonical_jsonable(self):
        _results, report = run_resilient_campaign(
            _specs()[:1] + [_bad_spec()], base_seed=3, jobs=1,
            policy=SupervisorPolicy(max_attempts=1, base_seed=3),
        )
        encoded = json.dumps(report, sort_keys=True, separators=(",", ":"))
        assert json.loads(encoded) == report


@pytest.mark.slow
class TestKillResume:
    def test_sigkill_mid_campaign_resume_identical(self, tmp_path):
        """SIGKILL a journaled campaign; the resumed run's stdout and
        metrics artifacts must be sha256-identical to an uninterrupted
        same-seed run.  (Valid wherever the kill lands — even after the
        campaign finished, the rerun still exercises resume-from-journal.)
        """
        env = dict(os.environ, PYTHONPATH=REPO_SRC)
        scenarios = ["baseline", "link-flap", "partition-heal", "two-faced"]

        def run_cli(extra, stdout_path):
            with open(stdout_path, "wb") as handle:
                return subprocess.run(
                    [sys.executable, "-m", "repro.faultlab", "--quick",
                     "--seed", "0", "--json", *scenarios, *extra],
                    stdout=handle, stderr=subprocess.DEVNULL, env=env,
                )

        ref_out = str(tmp_path / "ref_out")
        ref_json = str(tmp_path / "ref.json")
        assert run_cli(["--metrics-out", ref_out], ref_json).returncode == 0

        kr_out = str(tmp_path / "kr_out")
        kr_journal = str(tmp_path / "kr.jsonl")
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro.faultlab", "--quick",
             "--seed", "0", "--json", *scenarios,
             "--journal", kr_journal, "--metrics-out", kr_out],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
        )
        time.sleep(1.5)
        try:
            victim.send_signal(signal.SIGKILL)
        except ProcessLookupError:
            pass
        victim.wait()

        kr_json = str(tmp_path / "kr.json")
        resumed = run_cli(
            ["--journal", kr_journal, "--metrics-out", kr_out], kr_json
        )
        assert resumed.returncode == 0
        assert file_sha256(ref_json) == file_sha256(kr_json)
        for name in os.listdir(ref_out):
            assert file_sha256(
                os.path.join(ref_out, name)
            ) == file_sha256(os.path.join(kr_out, name)), name
        assert sorted(os.listdir(ref_out)) == sorted(os.listdir(kr_out))
