"""Unit tests for the experiment harness utilities."""

import pytest

from repro.experiments.harness import (
    ExperimentResult,
    PeriodicSampler,
    TimeSeries,
    format_ns,
    format_us,
    histogram,
)
from repro.sim import units


class TestTimeSeries:
    def make(self):
        series = TimeSeries(label="x")
        for i, v in enumerate([1.0, -5.0, 3.0, 2.0]):
            series.append(i, v)
        return series

    def test_append_and_len(self):
        assert len(self.make()) == 4

    def test_min_max(self):
        series = self.make()
        assert series.min() == -5.0
        assert series.max() == 3.0
        assert series.max_abs() == 5.0

    def test_tail(self):
        tail = self.make().tail(0.5)
        assert tail.values == [3.0, 2.0]
        assert tail.label == "x"

    def test_percentile(self):
        series = self.make()
        assert series.percentile_abs(0.0) == 1.0
        assert series.percentile_abs(0.99) == 5.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries(label="e").percentile_abs(0.5)


class TestExperimentResult:
    def test_series_lookup(self):
        series = TimeSeries(label="a")
        result = ExperimentResult(name="t", series=[series])
        assert result.series_by_label("a") is series
        with pytest.raises(KeyError):
            result.series_by_label("b")

    def test_render_includes_summary(self):
        series = TimeSeries(label="a")
        series.append(0, 1.0)
        result = ExperimentResult(
            name="t", params={"p": 1}, series=[series], summary={"k": "v"}
        )
        text = result.render()
        assert "=== t ===" in text
        assert "p=1" in text
        assert "k = v" in text

    def test_render_empty_series(self):
        result = ExperimentResult(name="t", series=[TimeSeries(label="a")])
        assert "(empty)" in result.render()


class TestPeriodicSampler:
    def test_samples_on_cadence(self, sim):
        sampler = PeriodicSampler(
            sim, interval_fs=units.MS, probe=lambda now: {"t": now}
        )
        sim.run_until(5 * units.MS)
        series = sampler.series["t"]
        assert series.times_fs == [0, units.MS, 2 * units.MS, 3 * units.MS, 4 * units.MS, 5 * units.MS]

    def test_start_offset(self, sim):
        sampler = PeriodicSampler(
            sim, interval_fs=units.MS, probe=lambda now: {"t": 1.0},
            start_fs=3 * units.MS,
        )
        sim.run_until(5 * units.MS)
        assert len(sampler.series["t"]) == 3

    def test_all_series_sorted(self, sim):
        sampler = PeriodicSampler(
            sim, interval_fs=units.MS, probe=lambda now: {"b": 1.0, "a": 2.0}
        )
        sim.run_until(units.MS)
        assert [s.label for s in sampler.all_series()] == ["a", "b"]


class TestHistogram:
    def test_pdf_normalized(self):
        pdf = histogram([0, 0, 1, 1, 1, 2])
        assert pdf[0] == pytest.approx(2 / 6)
        assert pdf[1] == pytest.approx(3 / 6)
        assert sum(pdf.values()) == pytest.approx(1.0)

    def test_empty(self):
        assert histogram([]) == {}

    def test_bin_width(self):
        pdf = histogram([0.0, 0.4, 1.6], bin_width=2.0)
        assert pdf[0.0] == pytest.approx(2 / 3)
        assert pdf[2.0] == pytest.approx(1 / 3)


def test_formatters():
    assert format_ns(6_400_000) == "6.4 ns"
    assert format_us(2_500_000_000) == "2.50 us"
