"""The batched backend's one contract: byte-identical to the scalar oracle.

Every test here runs the same seeded scenario on both backends and asserts
the *canonical metrics digests* are equal — not "close", equal.  The
hypothesis sweep draws topology, seed, link-up stagger, and an active
fault model, so the promotion, demotion (link-down and fault-window), and
merge-ordering machinery all get exercised, not just the steady state.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.network import DtpNetwork
from repro.fastpath import (
    FastpathCoordinator,
    direction_eligible,
    direction_ineligible_reason,
    eligibility_report,
)
from repro.fastpath.kernels import crosscheck_edge_times
from repro.faultlab.campaign import metrics_digest, run_scenario
from repro.network.topology import chain, clos
from repro.sim import units
from repro.sim.engine import MacroTickSimulator, SimulationError, Simulator
from repro.sim.randomness import RandomStreams
from repro.telemetry import Telemetry


def _digests(spec, seed):
    scalar = run_scenario(dict(spec), seed=seed)
    batched = run_scenario(dict(spec), seed=seed, backend="batched")
    return metrics_digest(scalar), metrics_digest(batched)


# ----------------------------------------------------------------------
# Property sweep: random topology x seed x stagger x fault model
# ----------------------------------------------------------------------
_TOPOLOGIES = st.sampled_from(
    [
        {"kind": "chain", "hosts": 2},
        {"kind": "chain", "hosts": 4},
        {"kind": "star", "hosts": 3},
        {"kind": "two-level-tree", "branches": 2, "leaves": 2},
        {"kind": "clos", "spines": 2, "leaves": 2},
    ]
)

# Each fault template targets nodes every sampled topology has (topology
# builders all start host numbering at their own prefixes, so faults are
# keyed per kind below).
_FAULTS = st.sampled_from(
    [
        None,
        {"kind": "link-flap", "down_every_fs": 200 * units.US,
         "down_for_fs": 40 * units.US, "start_fs": 250 * units.US, "flaps": 2},
        {"kind": "partition", "down_at_fs": 250 * units.US,
         "up_at_fs": 400 * units.US},
        {"kind": "two-faced", "lie_ticks": 6, "at_fs": 200 * units.US},
        {"kind": "oscillator-glitch", "at_fs": 200 * units.US,
         "duration_fs": 300 * units.US, "glitch_ppm": 40.0},
    ]
)


def _first_edge_nodes(topology_spec):
    from repro.faultlab.campaign import build_topology

    edge = build_topology(topology_spec).edges[0]
    return edge.a, edge.b


@settings(max_examples=12, deadline=None, derandomize=True, database=None)
@given(
    topology=_TOPOLOGIES,
    fault=_FAULTS,
    seed=st.integers(0, 2**16),
    stagger_us=st.sampled_from([0, 3, 17]),
)
def test_batched_backend_is_bit_identical(topology, fault, seed, stagger_us):
    a, b = _first_edge_nodes(topology)
    faults = []
    if fault is not None:
        fault = dict(fault)
        if fault["kind"] in ("link-flap", "partition"):
            fault.update(a=a, b=b)
        elif fault["kind"] == "two-faced":
            fault.update(node=a, victim=b)
        else:
            fault.update(node=b)
        faults.append(fault)
    spec = {
        "name": "prop",
        "topology": topology,
        "duration_fs": 600 * units.US,
        "faults": faults,
    }
    # Stagger exercises promotion at different per-port phases.  run_scenario
    # has no stagger knob, so fold it into the checker start instead of
    # growing the spec: the sample cadence shift reorders nothing.
    spec["sample_interval_fs"] = (64 + stagger_us) * units.US
    ds, db = _digests(spec, seed)
    assert ds == db


def test_all_builtin_scenarios_bit_identical_quick():
    from repro.faultlab.scenarios import builtin_specs

    for spec in builtin_specs(quick=True):
        ds, db = _digests(spec, seed=0)
        assert ds == db, f"{spec['name']}: backends diverged"


# ----------------------------------------------------------------------
# Eligibility and demotion
# ----------------------------------------------------------------------
def _batched_chain(seed=0, hosts=2, telemetry=None, tainted=None):
    sim = MacroTickSimulator()
    streams = RandomStreams(root_seed=seed)
    net = DtpNetwork(
        sim, chain(hosts), streams, telemetry=telemetry,
        backend="batched", tainted_nodes=tainted,
    )
    net.start()
    return sim, net


def test_tracing_demotes_to_scalar():
    # With telemetry tracing attached, no direction may ever promote: the
    # batched stages do not emit trace events, so promotion would change
    # the trace digest.
    telemetry = Telemetry()
    sim, net = _batched_chain(telemetry=telemetry)
    sim.run_until(2 * units.MS)
    assert net.all_synchronized()
    assert net.fastpath.promotions == 0
    port = net.ports[("n0", "n1")]
    assert direction_ineligible_reason(port, frozenset()) == (
        "telemetry tracing enabled"
    )


def test_untraced_chain_promotes_everything():
    sim, net = _batched_chain()
    sim.run_until(2 * units.MS)
    assert net.all_synchronized()
    assert net.fastpath.promotions == 2  # one per direction
    assert net.fastpath.demotions == 0
    assert net.fastpath.virtual_events > 0


def test_tainted_nodes_pin_directions_to_scalar():
    sim, net = _batched_chain(hosts=3, tainted=frozenset({"n2"}))
    sim.run_until(2 * units.MS)
    # n0<->n1 promotes (2 directions); everything touching n2 stays scalar.
    assert net.fastpath.promotions == 2
    port = net.ports[("n1", "n2")]
    assert not direction_eligible(port, frozenset({"n2"}))
    report = dict(eligibility_report(net.ports.values(), frozenset({"n2"})))
    assert report["n0->n1"] is None
    assert report["n2->n1"] == "fault model armed on an endpoint device"


def test_link_down_demotes_and_relearns():
    sim, net = _batched_chain(hosts=3)
    sim.run_until(2 * units.MS)
    assert net.fastpath.promotions == 4
    net.down_link("n0", "n1")
    assert net.fastpath.demotions == 2
    net.up_link("n0", "n1")
    sim.run_until(4 * units.MS)
    # The healed link re-promotes after INIT/JOIN; n1<->n2 never demoted.
    assert net.fastpath.promotions == 6
    assert net.all_synchronized()


def test_scenario_state_identical_not_just_digest():
    # Beyond metrics digests: every per-port counter the stats track.
    def run(backend):
        sim = MacroTickSimulator() if backend == "batched" else Simulator()
        streams = RandomStreams(root_seed=9)
        net = DtpNetwork(
            sim, chain(4), streams,
            skews={f"n{i}": ConstantSkew((-1.0) ** i * 30.0) for i in range(4)},
            backend=backend,
        )
        net.start()
        sim.run_until(3 * units.MS)
        state = {"seq": sim._seq, "now": sim._now}
        for key, port in sorted(net.ports.items()):
            state[key] = (
                port.lc.offset, port.lc.adjustments, port.d,
                port._last_tx_slot, port._beacons_since_msb,
                {k: c.value for k, c in port.stats._sent.items()},
                {k: c.value for k, c in port.stats._received.items()},
                port.stats.jumps, port.stats.rejected_out_of_range,
                port.stats.jumps_in_window, port.stats.rejects_in_window,
                port.fifo.crossings,
            )
        for name, device in sorted(net.devices.items()):
            state[name] = (device.gc.offset, device.gc.adjustments)
        return state

    assert run("scalar") == run("batched")


# ----------------------------------------------------------------------
# Engine merge plumbing
# ----------------------------------------------------------------------
def test_step_slow_path_matches_run_merged():
    # step() drains the merged queues one event at a time through the
    # coordinator's next_key/dispatch_next protocol; the end state must
    # match the fused run_merged loop exactly.
    import heapq

    def next_event_time(sim):
        vkey = sim.fastpath.next_key()
        queue = sim._queue
        while queue and queue[0][4].cancelled:
            heapq.heappop(queue)
            sim._cancelled_in_queue -= 1
        ekey = (queue[0][0], queue[0][1]) if queue else None
        keys = [key for key in (vkey, ekey) if key is not None]
        return min(keys)[0] if keys else None

    def run(stepwise):
        sim, net = _batched_chain(seed=4)
        horizon = 2 * units.MS
        if stepwise:
            while True:
                when = next_event_time(sim)
                if when is None or when > horizon:
                    break
                assert sim.step()
            sim._now = horizon
        else:
            sim.run_until(horizon)
        return (
            sim._seq,
            net.pair_offset("n0", "n1"),
            net.ports[("n0", "n1")].stats.jumps,
            net.fastpath.virtual_events,
        )

    assert run(False) == run(True)


def test_attach_fastpath_rejects_second_source():
    sim = MacroTickSimulator()
    sim.attach_fastpath(object())
    with pytest.raises(SimulationError):
        sim.attach_fastpath(object())


def test_coordinator_requires_macrotick_sim():
    with pytest.raises(TypeError):
        FastpathCoordinator(Simulator(), frozenset())


# ----------------------------------------------------------------------
# Vectorized kernels vs the scalar oracle
# ----------------------------------------------------------------------
def test_edge_times_kernel_matches_oracle():
    import numpy as np

    sim = Simulator()
    streams = RandomStreams(root_seed=7)
    net = DtpNetwork(sim, chain(2), streams)
    osc = net.devices["n0"].oscillator
    # Span several oscillator segments (1 ms updates) non-uniformly.
    ticks = np.unique(
        np.concatenate(
            [
                np.arange(1, 2000, 7, dtype=np.int64),
                np.arange(150_000, 160_000, 11, dtype=np.int64),
                np.arange(600_000, 600_500, 1, dtype=np.int64),
            ]
        )
    )
    assert crosscheck_edge_times(osc, ticks) == []


def test_clos_topology_shape():
    topo = clos(4, 8)
    assert len(topo.switches()) == 12
    assert len(topo.hosts()) == 32
    # Full bipartite leaf-spine stage plus host links: >100 directions.
    assert 2 * len(topo.edges) == 128
    assert topo.diameter_hops() == 4
