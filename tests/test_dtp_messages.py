"""Unit and property tests for the DTP message codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtp import messages as m


class TestEncodeDecode:
    def test_roundtrip_each_type(self):
        for mtype in m.MessageType:
            message = m.DtpMessage(mtype, 0x1ABCDEF012345)
            assert m.decode(m.encode(message)) == message

    def test_encode_layout(self):
        message = m.DtpMessage(m.MessageType.BEACON, 1)
        bits = m.encode(message)
        assert bits >> 53 == int(m.MessageType.BEACON)
        assert bits & ((1 << 53) - 1) == 1

    def test_fits_in_56_bits(self):
        message = m.DtpMessage(m.MessageType.LOG, (1 << 53) - 1)
        assert m.encode(message) < (1 << 56)

    def test_oversized_payload_rejected(self):
        with pytest.raises(m.MessageError):
            m.DtpMessage(m.MessageType.INIT, 1 << 53)

    def test_unknown_type_code_rejected(self):
        bits = (0b111 << 53) | 5  # type 7 unused
        with pytest.raises(m.MessageError):
            m.decode(bits)

    def test_oversized_bits_rejected(self):
        with pytest.raises(m.MessageError):
            m.decode(1 << 56)


class TestCounterHelpers:
    def test_counter_low_masks(self):
        counter = (0xABC << 53) | 0x123
        assert m.counter_low(counter) == 0x123

    def test_counter_high(self):
        counter = (0xABC << 53) | 0x123
        assert m.counter_high(counter) == 0xABC

    def test_reconstruct_exact(self):
        counter = 123_456_789_000
        assert m.reconstruct_counter(m.counter_low(counter), counter) == counter

    def test_reconstruct_near_reference(self):
        counter = 10**15
        reference = counter + 500  # receiver slightly ahead
        assert m.reconstruct_counter(m.counter_low(counter), reference) == counter

    def test_reconstruct_across_wrap(self):
        counter = (1 << 53) + 5  # just wrapped
        reference = (1 << 53) - 3  # receiver just before the wrap
        low = m.counter_low(counter)
        assert m.reconstruct_counter(low, reference) == counter

    def test_reconstruct_backward_wrap(self):
        counter = (1 << 53) - 3
        reference = (1 << 53) + 5
        low = m.counter_low(counter)
        assert m.reconstruct_counter(low, reference) == counter

    def test_wrap_takes_667_days(self):
        """Section 4.4: 53 bits of 6.4 ns ticks last about 667 days."""
        seconds = (1 << 53) * 6.4e-9
        days = seconds / 86400
        assert 650 < days < 680


class TestParity:
    def test_payload_with_parity_roundtrip(self):
        counter = 0b1011
        payload = m.payload_with_parity(counter)
        assert m.check_parity(payload)
        assert m.parity_counter_field(payload) == counter

    def test_parity_detects_lsb_flip(self):
        payload = m.payload_with_parity(0b101)
        corrupted = payload ^ 0b001
        assert not m.check_parity(corrupted)

    def test_parity_bit_position(self):
        # All-zero counter: parity 0; flipping one LSB makes parity wrong.
        payload = m.payload_with_parity(0)
        assert payload == 0
        assert not m.check_parity(payload ^ 1)


@given(
    mtype=st.sampled_from(list(m.MessageType)),
    payload=st.integers(min_value=0, max_value=(1 << 53) - 1),
)
@settings(max_examples=200, deadline=None)
def test_property_codec_roundtrip(mtype, payload):
    message = m.DtpMessage(mtype, payload)
    assert m.decode(m.encode(message)) == message


@given(
    counter=st.integers(min_value=0, max_value=(1 << 80)),
    drift=st.integers(min_value=-(1 << 20), max_value=1 << 20),
)
@settings(max_examples=200, deadline=None)
def test_property_reconstruct_recovers_counter(counter, drift):
    """Any reference within +/-2^20 of the true counter reconstructs it."""
    reference = max(0, counter + drift)
    assert m.reconstruct_counter(m.counter_low(counter), reference) == counter


@given(counter=st.integers(min_value=0, max_value=(1 << 52) - 1))
@settings(max_examples=100, deadline=None)
def test_property_parity_roundtrip(counter):
    payload = m.payload_with_parity(counter)
    assert m.check_parity(payload)
    assert m.parity_counter_field(payload) == counter
