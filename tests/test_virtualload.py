"""Unit tests for the fluid background-load model."""

import random

from repro.network.virtualload import (
    VirtualBacklog,
    heavy_backlog,
    idle_backlog,
    medium_backlog,
)
from repro.sim import units


def test_idle_backlog_never_waits():
    backlog = idle_backlog(random.Random(1))
    for t in range(0, 10 * units.SEC, units.SEC):
        assert backlog.wait_fs(t, 100) == 0


def test_overload_rides_the_cap():
    backlog = VirtualBacklog(rng=random.Random(2), offered_bps=15e9)
    waits = [backlog.wait_fs(t * units.SEC, 100) for t in range(1, 50)]
    cap_wait = backlog.cap_bytes * 8 / backlog.line_rate_bps * units.SEC
    assert min(waits) > 0.5 * cap_wait


def test_medium_load_sometimes_idle_sometimes_waiting():
    backlog = medium_backlog(random.Random(3))
    waits = [backlog.wait_fs(t * units.SEC, 100) for t in range(1, 400)]
    zeros = sum(1 for w in waits if w < units.US)
    busy = sum(1 for w in waits if w > 10 * units.US)
    assert zeros > 0
    assert busy > 0


def test_heavy_waits_exceed_medium():
    medium = medium_backlog(random.Random(4))
    heavy = heavy_backlog(random.Random(4))
    medium_waits = [medium.wait_fs(t * units.SEC, 100) for t in range(1, 200)]
    heavy_waits = [heavy.wait_fs(t * units.SEC, 100) for t in range(1, 200)]
    assert max(heavy_waits) > max(medium_waits)
    assert sum(heavy_waits) > sum(medium_waits)


def test_heavy_reaches_hundreds_of_microseconds():
    """The Figure 6f scale: waits of hundreds of us."""
    backlog = heavy_backlog(random.Random(5))
    waits = [backlog.wait_fs(t * units.SEC, 100) for t in range(1, 300)]
    assert max(waits) > 100 * units.US


def test_correlation_smooths_consecutive_queries():
    """Queries a few ms apart see nearly the same backlog."""
    backlog = heavy_backlog(random.Random(6))
    backlog.wait_fs(units.SEC, 100)
    first = backlog.backlog_bytes
    backlog.wait_fs(units.SEC + units.MS, 100)
    assert abs(backlog.backlog_bytes - first) < 0.2 * backlog.cap_bytes + 200


def test_packet_bytes_accumulate():
    backlog = idle_backlog(random.Random(7))
    backlog.wait_fs(0, 1000)
    wait = backlog.wait_fs(1, 1000)  # 1 fs later: sees the first packet
    assert wait > 0


def test_rho_property():
    backlog = VirtualBacklog(rng=random.Random(8), offered_bps=4e9)
    assert backlog.rho == 0.4
