"""Integration tests for DTP networks: multi-hop, dynamics, failures."""


from repro.clocks.oscillator import ConstantSkew
from repro.dtp.faults import schedule_partition
from repro.dtp.network import DtpNetwork
from repro.network.topology import chain, paper_testbed, star, two_level_tree
from repro.sim import units


def worst_offset_over(net, sim, start_fs, end_fs, step_fs=20 * units.US, nodes=None):
    worst = 0
    t = max(start_fs, sim.now)
    sim.run_until(t)
    while t < end_fs:
        t += step_fs
        sim.run_until(t)
        worst = max(worst, net.max_abs_offset(nodes, t))
    return worst


class TestTwoNode:
    def test_extreme_skews_stay_within_bound(self, sim, streams):
        net = DtpNetwork(
            sim, chain(2), streams,
            skews={"n0": ConstantSkew(100.0), "n1": ConstantSkew(-100.0)},
        )
        net.start()
        assert worst_offset_over(net, sim, units.MS, 5 * units.MS) <= 4

    def test_identical_clocks_nearly_zero_offset(self, sim, streams):
        net = DtpNetwork(
            sim, chain(2), streams,
            skews={"n0": ConstantSkew(0.0), "n1": ConstantSkew(0.0)},
        )
        net.start()
        assert worst_offset_over(net, sim, units.MS, 3 * units.MS) <= 2

    def test_all_ports_synchronized(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(units.MS)
        assert net.all_synchronized()


class TestMultiHop:
    def test_star_bound(self, sim, streams):
        net = DtpNetwork(sim, star(4), streams)
        net.start()
        # Any two hosts are 2 hops apart: bound 8 ticks.
        assert worst_offset_over(net, sim, units.MS, 4 * units.MS) <= 8

    def test_paper_testbed_bound(self, sim, streams):
        topo = paper_testbed()
        net = DtpNetwork(sim, topo, streams)
        net.start()
        bound = 4 * topo.diameter_hops()
        assert worst_offset_over(net, sim, units.MS, 4 * units.MS) <= bound

    def test_six_hop_chain_bound(self, sim, streams):
        net = DtpNetwork(sim, chain(7), streams)
        net.start()
        worst = worst_offset_over(
            net, sim, units.MS, 4 * units.MS, nodes=["n0", "n6"]
        )
        assert worst <= 24  # 4 * 6 = paper's 153.6 ns at 10 GbE

    def test_adjacent_pairs_within_four(self, sim, streams):
        topo = two_level_tree(2, 2)
        net = DtpNetwork(sim, topo, streams)
        net.start()
        sim.run_until(units.MS)
        worst = 0
        t = sim.now
        for _ in range(100):
            t += 20 * units.US
            sim.run_until(t)
            for edge in topo.edges:
                worst = max(worst, abs(net.pair_offset(edge.a, edge.b, t)))
        assert worst <= 4


class TestNetworkDynamics:
    def test_staggered_startup_converges(self, sim, streams):
        net = DtpNetwork(sim, star(4), streams)
        net.start(stagger_fs=200 * units.US)
        sim.run_until(2 * units.MS)
        assert net.all_synchronized()
        assert worst_offset_over(net, sim, 2 * units.MS, 4 * units.MS) <= 8

    def test_partition_and_heal(self, sim, streams):
        net = DtpNetwork(
            sim, chain(3), streams,
            skews={
                "n0": ConstantSkew(100.0),
                "n1": ConstantSkew(100.0),
                "n2": ConstantSkew(-100.0),
            },
        )
        net.start()
        schedule_partition(net, "n1", "n2", down_at_fs=2 * units.MS, up_at_fs=6 * units.MS)
        # While partitioned, n2 (slow side) drifts behind.
        sim.run_until(6 * units.MS)
        drifted = abs(net.pair_offset("n1", "n2"))
        assert drifted > 4  # 4 ms at 200 ppm gap ~ 125 ticks
        # After healing, BEACON_JOIN pulls the slow side forward again.
        sim.run_until(8 * units.MS)
        assert worst_offset_over(net, sim, 8 * units.MS, 9 * units.MS) <= 8

    def test_late_joiner_with_zero_counter(self, sim, streams):
        net = DtpNetwork(sim, chain(3), streams)
        net.ports[("n0", "n1")].link_up()
        net.ports[("n1", "n0")].link_up()
        sim.run_until(2 * units.MS)
        # n2 powers on now; its counter is far behind the running network.
        joiner = net.devices["n2"]
        joiner.gc.set_counter(sim.now, 0)
        net.up_link("n1", "n2")
        sim.run_until(4 * units.MS)
        assert abs(net.pair_offset("n1", "n2")) <= 4

    def test_global_counter_monotonic_through_dynamics(self, sim, streams):
        net = DtpNetwork(sim, chain(3), streams)
        net.start()
        schedule_partition(net, "n0", "n1", down_at_fs=units.MS, up_at_fs=2 * units.MS)
        previous = -1
        t = 0
        while t < 4 * units.MS:
            t += 50 * units.US
            sim.run_until(t)
            current = net.counter_of("n0", t)
            assert current > previous
            previous = current


class TestBitErrors:
    def test_sync_survives_elevated_ber(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams, ber=1e-6)
        net.start()
        assert worst_offset_over(net, sim, units.MS, 5 * units.MS) <= 8

    def test_corrupted_messages_counted(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams, ber=1e-4)
        net.start()
        sim.run_until(5 * units.MS)
        total_rejected = sum(
            p.stats.rejected_out_of_range
            + p.stats.rejected_undecodable
            + p.stats.lost_on_wire
            for p in net.ports.values()
        )
        assert total_rejected > 0


class TestMeasurementChannel:
    def test_logged_offsets_match_bound(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        net.attach_logger("n0", "n1")
        sim.run_until(units.MS)
        for _ in range(50):
            net.send_log("n0", "n1")
            sim.run_until(sim.now + 20 * units.US)
        samples = net.logged_for("n0", "n1")
        assert len(samples) == 50
        assert all(-4 <= s.offset_ticks <= 4 for s in samples)
