"""Unit tests for cables and byte FIFOs."""

import pytest

from repro.network.link import Cable, CableError, MAX_DATACENTER_CABLE_M
from repro.network.queues import ByteFifo
from repro.sim import units


class TestCable:
    def test_default_delay_is_integer_ticks(self):
        cable = Cable()
        assert cable.delay_fs % units.TICK_10G_FS == 0
        assert cable.delay_fs == 8 * units.TICK_10G_FS

    def test_delay_five_ns_per_meter(self):
        cable = Cable(length_m=100.0)
        assert cable.delay_fs == 500 * units.NS

    def test_asymmetry_splits_directions(self):
        cable = Cable(length_m=10.0, asymmetry_fs=2 * units.NS)
        assert cable.forward_delay_fs() - cable.reverse_delay_fs() == 2 * units.NS

    def test_symmetric_by_default(self):
        cable = Cable()
        assert cable.forward_delay_fs() == cable.reverse_delay_fs() == cable.delay_fs

    def test_zero_length_rejected(self):
        with pytest.raises(CableError):
            Cable(length_m=0.0)

    def test_overlong_cable_rejected(self):
        with pytest.raises(CableError):
            Cable(length_m=MAX_DATACENTER_CABLE_M + 1)

    def test_max_datacenter_cable_delay_is_5us(self):
        cable = Cable(length_m=1000.0)
        assert cable.delay_fs == 5 * units.US

    def test_delay_in_ticks(self):
        cable = Cable(length_m=10.24)
        assert cable.delay_ticks(units.TICK_10G_FS) == pytest.approx(8.0)


class TestByteFifo:
    def test_push_pop_order(self):
        fifo = ByteFifo(1000)
        fifo.push("a", 100)
        fifo.push("b", 100)
        assert fifo.pop() == ("a", 100)
        assert fifo.pop() == ("b", 100)

    def test_pop_empty_returns_none(self):
        assert ByteFifo(10).pop() is None

    def test_tail_drop_when_full(self):
        fifo = ByteFifo(150)
        assert fifo.push("a", 100) is True
        assert fifo.push("b", 100) is False
        assert fifo.dropped == 1

    def test_bytes_accounting(self):
        fifo = ByteFifo(1000)
        fifo.push("a", 300)
        assert fifo.bytes_queued == 300
        fifo.pop()
        assert fifo.bytes_queued == 0

    def test_peak_tracking(self):
        fifo = ByteFifo(1000)
        fifo.push("a", 400)
        fifo.push("b", 500)
        fifo.pop()
        fifo.pop()
        assert fifo.peak_bytes == 900

    def test_len(self):
        fifo = ByteFifo(1000)
        fifo.push("a", 1)
        assert len(fifo) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ByteFifo(0)
