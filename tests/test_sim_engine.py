"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError


def test_initial_time_is_zero(sim):
    assert sim.now == 0


def test_schedule_and_run_single_event(sim):
    fired = []
    sim.schedule(100, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert sim.now == 100


def test_events_run_in_time_order(sim):
    order = []
    sim.schedule(300, order.append, 3)
    sim.schedule(100, order.append, 1)
    sim.schedule(200, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_ties_break_by_insertion_order(sim):
    order = []
    sim.schedule(50, order.append, "first")
    sim.schedule(50, order.append, "second")
    sim.schedule(50, order.append, "third")
    sim.run()
    assert order == ["first", "second", "third"]


def test_schedule_at_absolute_time(sim):
    times = []
    sim.schedule_at(42, lambda: times.append(sim.now))
    sim.run()
    assert times == [42]


def test_cannot_schedule_in_past(sim):
    sim.schedule_at(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5, lambda: None)


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_cancel_prevents_execution(sim):
    fired = []
    event = sim.schedule(10, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent(sim):
    event = sim.schedule(10, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    assert sim.pending_events == 0


def test_cancel_none_is_safe(sim):
    sim.cancel(None)


def test_run_until_executes_events_up_to_time(sim):
    fired = []
    sim.schedule(100, fired.append, "early")
    sim.schedule(200, fired.append, "late")
    sim.run_until(150)
    assert fired == ["early"]
    assert sim.now == 150


def test_run_until_includes_boundary_events(sim):
    fired = []
    sim.schedule(150, fired.append, "edge")
    sim.run_until(150)
    assert fired == ["edge"]


def test_run_until_advances_time_even_without_events(sim):
    sim.run_until(1000)
    assert sim.now == 1000


def test_run_until_rejects_past(sim):
    sim.run_until(100)
    with pytest.raises(SimulationError):
        sim.run_until(50)


def test_events_scheduled_during_run_execute(sim):
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 50:
            sim.schedule(10, chain)

    sim.schedule(10, chain)
    sim.run()
    assert fired == [10, 20, 30, 40, 50]


def test_step_returns_false_when_empty(sim):
    assert sim.step() is False


def test_step_runs_exactly_one_event(sim):
    fired = []
    sim.schedule(1, fired.append, 1)
    sim.schedule(2, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]


def test_run_with_max_events(sim):
    for i in range(10):
        sim.schedule(i + 1, lambda: None)
    count = sim.run(max_events=3)
    assert count == 3
    assert sim.pending_events == 7


def test_pending_events_counts_live_only(sim):
    keep = sim.schedule(10, lambda: None)
    cancel = sim.schedule(20, lambda: None)
    sim.cancel(cancel)
    assert sim.pending_events == 1
    sim.cancel(keep)
    assert sim.pending_events == 0


def test_event_args_passed_through(sim):
    received = []
    sim.schedule(5, lambda a, b: received.append((a, b)), 1, "two")
    sim.run()
    assert received == [(1, "two")]


def test_zero_delay_runs_after_current_event(sim):
    order = []

    def outer():
        sim.schedule(0, order.append, "inner")
        order.append("outer")

    sim.schedule(10, outer)
    sim.run()
    assert order == ["outer", "inner"]
