"""Unit tests for master-rooted DTP (paper Section 5.4)."""

import pytest

from repro.clocks.oscillator import ConstantSkew, Oscillator
from repro.dtp.network import DtpNetwork
from repro.dtp.spanning_tree import FollowerClock, configure_spanning_tree
from repro.network.topology import chain, two_level_tree
from repro.sim import units
from repro.sim.randomness import RandomStreams

TICK = units.TICK_10G_FS


class TestFollowerClock:
    def make(self, ppm=0.0):
        return FollowerClock(Oscillator(TICK, ConstantSkew(ppm)))

    def test_jump_forward(self):
        clock = self.make()
        t = 100 * TICK
        assert clock.track(t, 500) == "jump"
        assert clock.counter_at(t) == 500

    def test_stall_drops_excess_ticks(self):
        clock = self.make()
        t = 100 * TICK
        assert clock.track(t, 97) == "stall"  # we are 3 ticks fast
        # Displayed value holds at 100...
        assert clock.counter_at(t) == 100
        assert clock.counter_at(t + TICK) == 100
        assert clock.counter_at(t + 2 * TICK) == 100
        # ...and resumes once the rewound base catches up (3 ticks later).
        assert clock.counter_at(t + 4 * TICK) == 101

    def test_counter_monotonic_through_stall(self):
        clock = self.make(100.0)
        previous = -1
        t = 0
        for step in range(200):
            t += TICK
            if step == 50:
                clock.track(t, clock.counter_at(t) - 2)
            value = clock.counter_at(t)
            assert value >= previous
            previous = value

    def test_equal_candidate_holds(self):
        clock = self.make()
        t = 10 * TICK
        assert clock.track(t, clock.counter_at(t)) == "hold"

    def test_reference_counter_ignores_hold(self):
        clock = self.make()
        t = 100 * TICK
        clock.track(t, 95)
        assert clock.reference_counter_at(t) == 95  # rewound free value
        assert clock.counter_at(t) == 100  # held display

    def test_stall_counter_increments(self):
        clock = self.make()
        clock.track(100 * TICK, 90)
        assert clock.stalls == 1


def _runaway_net(sim, seed=4, runaway_ppm=800.0):
    skews = {
        "n0": ConstantSkew(0.0),
        "n1": ConstantSkew(runaway_ppm),
        "n2": ConstantSkew(-30.0),
    }
    return DtpNetwork(sim, chain(3), RandomStreams(seed), skews=skews)


class TestSpanningTree:
    def test_parent_map(self, sim):
        net = DtpNetwork(sim, two_level_tree(2, 2), RandomStreams(1))
        parents = configure_spanning_tree(net, master="s0")
        assert parents["s0"] is None
        assert parents["s1"] == "s0"
        assert parents["h0"] in ("s1", "s2")

    def test_unknown_master_rejected(self, sim):
        net = DtpNetwork(sim, chain(2), RandomStreams(1))
        with pytest.raises(ValueError):
            configure_spanning_tree(net, master="ghost")

    def test_master_rate_immune_to_runaway(self, sim):
        """Plain DTP follows the fastest clock; tree DTP follows the master."""
        net = _runaway_net(sim)
        configure_spanning_tree(net, master="n0")
        net.start()
        sim.run_until(5 * units.MS)
        nominal = 5 * units.MS // TICK
        assert abs(net.counter_of("n0") - nominal) <= 2

    def test_children_track_master_within_bound(self, sim):
        net = _runaway_net(sim)
        configure_spanning_tree(net, master="n0")
        net.start()
        sim.run_until(2 * units.MS)
        worst = 0
        t = sim.now
        for _ in range(200):
            t += 20 * units.US
            sim.run_until(t)
            worst = max(worst, net.max_abs_offset())
        # Two hops, one via an 800 ppm runaway: comfortably bounded.
        assert worst <= 8

    def test_runaway_child_stalls(self, sim):
        net = _runaway_net(sim)
        configure_spanning_tree(net, master="n0")
        net.start()
        sim.run_until(3 * units.MS)
        uplink = net.ports[("n1", "n0")]
        assert uplink.lc.stalls > 100  # drops ~0.16 tick/beacon worth

    def test_counters_monotonic_in_tree_mode(self, sim):
        net = _runaway_net(sim)
        configure_spanning_tree(net, master="n0")
        net.start()
        previous = {name: -1 for name in ("n0", "n1", "n2")}
        t = 0
        while t < 3 * units.MS:
            t += 40 * units.US
            sim.run_until(t)
            for name in previous:
                value = net.counter_of(name, t)
                assert value >= previous[name]
                previous[name] = value

    def test_in_spec_network_also_fine(self, sim):
        """Tree mode on a healthy network behaves like plain DTP."""
        net = DtpNetwork(sim, chain(3), RandomStreams(9))
        configure_spanning_tree(net, master="n0")
        net.start()
        sim.run_until(2 * units.MS)
        worst = 0
        t = sim.now
        for _ in range(100):
            t += 20 * units.US
            sim.run_until(t)
            worst = max(worst, net.max_abs_offset())
        assert worst <= 8
