"""Golden regression numbers: seed-pinned exact outputs.

Simulation behaviour must not drift silently.  These values were captured
from the current implementation with fixed seeds; a change here means the
model changed — which may be fine, but must be deliberate (update the
constants and say why in the commit).
"""

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.network import DtpNetwork
from repro.network.topology import chain, paper_testbed
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def test_golden_two_node_counters():
    sim = Simulator()
    net = DtpNetwork(
        sim, chain(2), RandomStreams(42),
        skews={"n0": ConstantSkew(100.0), "n1": ConstantSkew(-100.0)},
    )
    net.start()
    sim.run_until(2 * units.MS)
    counters = [net.counter_of(n) for n in ("n0", "n1")]
    # Nominal ticks in 2 ms: 312500; the fast (+100 ppm) clock leads by ~31.
    assert counters[0] == 312531
    assert abs(counters[0] - counters[1]) <= 4


def test_golden_owd_measurement():
    sim = Simulator()
    net = DtpNetwork(sim, chain(2), RandomStreams(42))
    net.start()
    sim.run_until(500 * units.US)
    assert net.ports[("n0", "n1")].d == 44
    assert net.ports[("n1", "n0")].d == 44


def test_golden_testbed_fingerprint():
    """Counter fingerprint of the whole Figure 5 testbed at seed 7."""
    sim = Simulator()
    net = DtpNetwork(sim, paper_testbed(), RandomStreams(7))
    net.start()
    sim.run_until(units.MS)
    counters = {name: net.counter_of(name) for name in sorted(net.devices)}
    spread = max(counters.values()) - min(counters.values())
    assert spread <= 16
    # The maximum is set by the fastest oscillator drawn at seed 7.
    assert max(counters.values()) == 156262


def test_golden_determinism_across_runs():
    def fingerprint():
        sim = Simulator()
        net = DtpNetwork(sim, paper_testbed(), RandomStreams(1234))
        net.start()
        sim.run_until(units.MS)
        return tuple(net.counter_of(n) for n in sorted(net.devices))

    assert fingerprint() == fingerprint()
