"""Unit tests for overhead accounting, SyncE, and ASCII rendering."""

import pytest

from repro.dtp.network import DtpNetwork
from repro.experiments.asciiplot import (
    render_comparison,
    render_histogram,
    render_series,
)
from repro.experiments.harness import TimeSeries
from repro.experiments.overhead import (
    dtp_overhead,
    expected_dtp_message_rate,
    packet_overhead,
    verify_zero_packet_overhead,
)
from repro.network.packet import PacketNetwork
from repro.network.topology import chain, star
from repro.phy.specs import PHY_10G
from repro.sim import units


class TestOverhead:
    def test_dtp_zero_packets(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(2 * units.MS)
        report = dtp_overhead(net, 2 * units.MS)
        assert report.packets_per_s == 0.0
        assert report.bytes_per_s == 0.0
        assert report.messages_per_link_per_s > 100_000  # "hundreds of thousands"

    def test_expected_message_rate_matches_paper(self):
        """200-tick beacons = 781,250 messages/s per direction."""
        rate = expected_dtp_message_rate(200, PHY_10G.period_fs)
        assert rate == pytest.approx(781_250, rel=1e-6)

    def test_measured_rate_close_to_expected(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(4 * units.MS)
        report = dtp_overhead(net, 4 * units.MS)
        expected = 2 * expected_dtp_message_rate(200, PHY_10G.period_fs)
        assert report.messages_per_link_per_s == pytest.approx(expected, rel=0.1)

    def test_verify_zero_packet_summary(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(units.MS)
        totals = verify_zero_packet_overhead(net)
        assert totals["ethernet_packets"] == 0
        assert totals["BEACON"] > 0
        assert totals["INIT"] >= 2

    def test_packet_overhead_counts_wire_traffic(self, sim, streams):
        net = PacketNetwork(sim, star(2))
        for _ in range(10):
            net.send("h0", "h1", 100, "ptp_sync")
        sim.run()
        report = packet_overhead("PTP", net, units.SEC, "ptp")
        assert report.packets_per_s >= 10
        assert report.bytes_per_s > 0
        assert "PTP" in report.render()


class TestSyncE:
    def test_syntonized_network_shares_frequency(self, sim, streams):
        net = DtpNetwork(sim, chain(3), streams, syntonized=True)
        periods = {
            dev.oscillator.period_at(0) for dev in net.devices.values()
        }
        assert len(periods) == 1

    def test_syntonized_offsets_tighter(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams, syntonized=True)
        net.start()
        sim.run_until(units.MS)
        worst = 0
        t = sim.now
        for _ in range(200):
            t += 20 * units.US
            sim.run_until(t)
            worst = max(worst, net.max_abs_offset())
        assert worst <= 2  # beacon-drift term gone; CDC term remains


class TestAsciiPlot:
    def make_series(self):
        series = TimeSeries(label="offsets")
        for i in range(50):
            series.append(i, (i % 5) - 2)
        return series

    def test_render_series_has_frame_and_label(self):
        text = render_series(self.make_series())
        assert "offsets" in text
        assert text.count("|") >= 28  # 14 rows x 2 borders
        assert "*" in text or "#" in text

    def test_render_empty_series(self):
        assert "empty" in render_series(TimeSeries(label="x"))

    def test_render_series_respects_bounds(self):
        text = render_series(self.make_series(), y_bounds=(-10, 10))
        assert "[-10.00 .. 10.00]" in text

    def test_render_histogram(self):
        text = render_histogram({0.0: 0.5, 1.0: 0.3, 2.0: 0.2}, label="pdf")
        assert "pdf" in text
        assert text.count("|") == 3

    def test_render_histogram_empty(self):
        assert "empty" in render_histogram({})

    def test_render_comparison_sorted(self):
        text = render_comparison({"DTP": 25.6, "PTP": 400.0, "NTP": 1e5}, unit="ns")
        lines = text.splitlines()
        assert lines[0].strip().startswith("DTP")
        assert lines[-1].strip().startswith("NTP")

    def test_render_comparison_log_scale(self):
        text = render_comparison({"a": 1.0, "b": 1e6}, log=True)
        assert "#" in text
