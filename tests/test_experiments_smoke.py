"""Smoke tests: every experiment runs (tiny durations) and reproduces the
paper's qualitative claims."""

import pytest

from repro.experiments import ablations, bounds, convergence, fig6_dtp, fig6_ptp
from repro.experiments import fig7_daemon, table1, table2
from repro.experiments.fig6_dtp import Fig6DtpConfig
from repro.experiments.fig6_ptp import Fig6PtpConfig
from repro.experiments.fig7_daemon import Fig7Config
from repro.sim import units


class TestFig6Dtp:
    def test_mtu_run_within_bound(self):
        config = Fig6DtpConfig(duration_fs=4 * units.MS, warmup_fs=units.MS)
        result = fig6_dtp.run_fig6_dtp(config)
        assert result.summary["within_direct_bound"]
        assert result.summary["worst_logged_offset_ticks"] <= 4
        assert result.params["beacon_interval_ticks"] == 193

    def test_jumbo_run_within_bound(self):
        config = Fig6DtpConfig(
            frame_name="jumbo", duration_fs=4 * units.MS, warmup_fs=units.MS
        )
        result = fig6_dtp.run_fig6_dtp(config)
        assert result.summary["within_direct_bound"]
        assert result.params["beacon_interval_ticks"] == 1130

    def test_fig6c_distributions_concentrated(self):
        config = Fig6DtpConfig(
            frame_name="jumbo", duration_fs=6 * units.MS, warmup_fs=units.MS
        )
        result, pdfs = fig6_dtp.run_fig6c(config)
        assert set(pdfs) == {"s3-s9", "s3-s10", "s3-s11", "s3-s0"}
        for pdf in pdfs.values():
            assert all(-4 <= bin_center <= 4 for bin_center in pdf)
            assert sum(pdf.values()) == pytest.approx(1.0)

    def test_true_offsets_tracked(self):
        config = Fig6DtpConfig(duration_fs=3 * units.MS, warmup_fs=units.MS)
        result = fig6_dtp.run_fig6_dtp(config)
        assert result.summary["true_max_offset_ticks"] <= result.summary["bound_ticks_network"]


class TestFig6Ptp:
    def test_idle_sub_microsecond(self):
        config = Fig6PtpConfig(
            load="idle", duration_fs=150 * units.SEC, warmup_fs=60 * units.SEC
        )
        result = fig6_ptp.run_fig6_ptp(config)
        assert result.summary["worst_offset_us"] < 1.0

    def test_heavy_load_degrades_by_orders_of_magnitude(self):
        idle = fig6_ptp.run_fig6_ptp(
            Fig6PtpConfig(load="idle", duration_fs=150 * units.SEC, warmup_fs=60 * units.SEC)
        )
        heavy = fig6_ptp.run_fig6_ptp(
            Fig6PtpConfig(load="heavy", duration_fs=150 * units.SEC, warmup_fs=60 * units.SEC)
        )
        assert heavy.summary["worst_offset_us"] > 20 * idle.summary["worst_offset_us"]

    def test_heavy_excludes_h8_by_default(self):
        config = Fig6PtpConfig(
            load="heavy", duration_fs=30 * units.SEC, warmup_fs=10 * units.SEC
        )
        result = fig6_ptp.run_fig6_ptp(config)
        assert result.params["excluded"] == "h8"


class TestFig7:
    def test_raw_and_smoothed_match_paper_shape(self):
        config = Fig7Config(duration_fs=60 * units.MS)
        raw, smoothed = fig7_daemon.run_fig7(config)
        assert raw.summary["p50_abs_ticks"] <= 16  # "usually better than 16"
        assert smoothed.summary["p95_abs_ticks"] <= raw.summary["max_abs_ticks"]
        assert smoothed.summary["p50_abs_ticks"] <= 4


class TestTables:
    def test_table1_preserves_ordering(self):
        result = table1.run_table1(
            packet_protocol_duration_fs=40 * units.SEC,
            dtp_duration_fs=units.MS,
        )
        assert result.summary["dtp_beats_ptp"]
        assert result.summary["ptp_beats_ntp"]
        assert result.summary["dtp_ns_scale"]
        assert len(result.summary["rows"]) == 4

    def test_table2_all_speeds_bound(self):
        result = table2.run_table2(duration_fs=units.MS)
        assert result.summary["all_speeds_within_bound"]
        assert result.summary["increments_common_unit"]
        # Message counts are read back from the telemetry registry; the
        # implied beacon rate must match the paper's overhead analysis.
        assert result.summary["all_message_rates_plausible"]


class TestBounds:
    def test_hop_scaling_within_4td(self):
        config = bounds.BoundsConfig(
            max_hops=4, duration_fs=3 * units.MS, warmup_fs=units.MS
        )
        result = bounds.run_hop_scaling(config)
        assert result.summary["all_within_bound"]

    def test_fat_tree_within_153_6_ns(self):
        result = bounds.run_fat_tree(duration_fs=2 * units.MS, warmup_fs=units.MS)
        assert result.params["diameter_hops"] == 6
        assert result.summary["within_bound"]
        assert result.summary["bound_ns"] == pytest.approx(153.6)


class TestConvergence:
    def test_dtp_converges_within_beacon_intervals(self):
        result = convergence.run_dtp_convergence()
        assert result.summary["converged"]
        assert result.summary["within_paper_claim"]

    def test_ptp_takes_longer_than_dtp(self):
        dtp = convergence.run_dtp_convergence()
        ptp = convergence.run_ptp_convergence(duration_fs=120 * units.SEC)
        dtp_seconds = dtp.summary["time_to_sync_us"] / 1e6
        assert ptp.summary["time_to_stay_under_threshold_s"] > 100 * dtp_seconds


class TestAblations:
    def test_alpha_three_prevents_fast_counter(self):
        result = ablations.run_alpha_sweep(
            alphas=[0, 3], duration_fs=3 * units.MS
        )
        assert result.summary["alpha3_no_excess"]
        assert result.summary["alpha0_excess"] > 0

    def test_beacon_interval_budget(self):
        result = ablations.run_beacon_interval_sweep(
            intervals=[200, 4000, 20_000], duration_fs=4 * units.MS
        )
        assert result.summary["within_4_up_to_4000"]
        assert result.summary["degrades_beyond_5000"]

    def test_bit_error_filter(self):
        result = ablations.run_bit_error_ablation(duration_fs=4 * units.MS)
        assert result.summary["filter_keeps_bound"]
        assert result.summary["unfiltered_breaks"]

    def test_cdc_ablation(self):
        result = ablations.run_cdc_ablation(duration_fs=2 * units.MS)
        assert result.summary["cdc_off_reduces_spread"]
        assert result.summary["both_within_bound"]

    def test_asymmetry_ablation(self):
        result = ablations.run_asymmetry_ablation(duration_fs=2 * units.MS)
        assert result.summary["asymmetry_costs_precision"]
