"""PR-1 fast paths vs the verbatim seed core, *under active faults*.

The performance work (tuple-heap engine, inline encode/decode, CDC fusion)
must not change observable behavior even while a link is flapping and a
BER burst is corrupting wire blocks.  Runs the same campaign scenario on
both implementations and requires sha256-identical metrics.

(The fault set here is restricted to models the seed port code also
supports: beacon suppression needs the ``tx_allow`` hook, which the seed
``_transmit_now`` predates.)
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from _seed_core import SeedSimulator, seed_implementation  # noqa: E402

from repro.faultlab import metrics_digest, run_scenario  # noqa: E402
from repro.sim import units  # noqa: E402


def _faulted_spec():
    return {
        "name": "equivalence",
        "topology": {"kind": "chain", "hosts": 3},
        "duration_fs": 1500 * units.US,
        "faults": [
            {"kind": "link-flap", "a": "n0", "b": "n1",
             "start_fs": 300 * units.US, "down_every_fs": 400 * units.US,
             "down_for_fs": 80 * units.US, "flaps": 2,
             "jitter_fs": 20 * units.US},
            {"kind": "ber-burst", "a": "n1", "b": "n2",
             "start_fs": 500 * units.US, "duration_fs": 300 * units.US,
             "ber": 1e-6},
        ],
    }


def _reference(spec, seed):
    with seed_implementation():
        return run_scenario(spec, seed=seed, sim_factory=SeedSimulator)


@pytest.mark.parametrize("seed", [0, 42])
def test_seed_core_identical_under_faults(seed):
    spec = _faulted_spec()
    fast = run_scenario(spec, seed=seed)
    ref = _reference(spec, seed)
    assert metrics_digest(fast) == metrics_digest(ref)
    assert fast == ref


def test_seed_core_identical_fault_free():
    spec = {
        "name": "clean",
        "topology": {"kind": "chain", "hosts": 3},
        "duration_fs": 800 * units.US,
    }
    assert metrics_digest(run_scenario(spec, seed=7)) == metrics_digest(
        _reference(spec, 7)
    )
