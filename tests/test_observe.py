"""End-to-end promises of the observe layer: taps, SLOs, health, CLI.

The mission-control contract has four load-bearing parts, each pinned
here: snapshot streams are byte-identical across backends and worker
counts; enabling the taps never perturbs the simulation itself; the SLO
engine's *live* verdicts (from a stream's final record) equal its
*post-hoc* verdicts (from the results dict); and the health channel is
explicitly nondeterministic and segregated.  The CLI tests drive
``repro status`` / ``watch`` / ``slo evaluate`` straight from a run
directory, the way an operator would.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.discipline.racelab import race_specs, run_race_campaign
from repro.faultlab.campaign import run_campaign, run_scenario
from repro.faultlab.scenarios import builtin_specs
from repro.observe import (
    HealthRecorder,
    SLOError,
    builtin_slos,
    evaluate_slo,
    load_slo,
    read_health,
    read_snapshots,
    slo_source_from_result,
    slo_source_from_snapshots,
)
from repro.observe.cli import (
    evaluate_results,
    evaluate_rundir,
    main as observe_main,
)


def canon(result) -> str:
    return json.dumps(result, sort_keys=True)


def tree(root: Path):
    """{relative path: bytes} for every file under ``root``."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def spec_for(name: str):
    return builtin_specs([name], quick=True)[0]


# ----------------------------------------------------------------------
# Snapshot streams: deterministic, backend- and jobs-invariant
# ----------------------------------------------------------------------
class TestSnapshotStreams:
    def test_streams_identical_across_backends(self, tmp_path):
        trees = {}
        for backend in ("scalar", "batched", "sharded"):
            out = tmp_path / backend
            kwargs = {"backend": backend}
            if backend == "sharded":
                kwargs.update(shards=2, shard_transport="inline")
            run_scenario(
                spec_for("baseline"),
                seed=0,
                snapshot_dir=str(out),
                observe=True,
                **kwargs,
            )
            trees[backend] = tree(out)
        assert trees["scalar"] == trees["batched"] == trees["sharded"]
        assert any(p.endswith(".snapshots.jsonl") for p in trees["scalar"])

    def test_streams_identical_serial_vs_jobs2(self, tmp_path):
        specs = builtin_specs(["baseline", "partition-heal"], quick=True)
        serial_dir, par_dir = tmp_path / "serial", tmp_path / "par"
        serial = run_campaign(
            specs, base_seed=0, jobs=1, snapshot_dir=str(serial_dir), observe=True
        )
        parallel = run_campaign(
            specs, base_seed=0, jobs=2, snapshot_dir=str(par_dir), observe=True
        )
        assert canon(serial) == canon(parallel)
        assert tree(serial_dir) == tree(par_dir)

    def test_taps_do_not_perturb_the_run(self):
        plain = run_scenario(spec_for("baseline"), seed=0)
        tapped = run_scenario(spec_for("baseline"), seed=0, observe=True)
        assert "observe" not in plain
        observed = dict(tapped)
        assert observed.pop("observe")["samples"] > 0
        assert canon(observed) == canon(plain)

    def test_stream_is_valid_and_final(self, tmp_path):
        run_scenario(
            spec_for("baseline"), seed=0, snapshot_dir=str(tmp_path), observe=True
        )
        path = next(tmp_path.glob("*.snapshots.jsonl"))
        stream = read_snapshots(str(path))
        header = stream["header"]
        assert header["scenario"] == "baseline"
        assert header["seed"] == 0
        assert header["sample_interval_fs"] > 0
        snaps = stream["snapshots"]
        assert snaps and stream["final"] is not None
        times = [s["t_fs"] for s in snaps]
        assert times == sorted(times)


# ----------------------------------------------------------------------
# Precision-SLO engine
# ----------------------------------------------------------------------
class TestSLOEngine:
    def test_live_equals_posthoc_verdicts(self, tmp_path):
        specs = builtin_specs(["baseline", "two-faced"], quick=True)
        results = run_campaign(
            specs, base_seed=0, jobs=1, snapshot_dir=str(tmp_path), observe=True
        )
        slo = load_slo("default")
        live = evaluate_rundir(str(tmp_path), slo)
        posthoc = evaluate_results(results, slo)
        assert canon(live) == canon(posthoc)

    def test_two_faced_breaches_default_and_baseline_passes(self):
        slo = load_slo("default")
        good = evaluate_slo(
            slo,
            slo_source_from_result(
                run_scenario(spec_for("baseline"), seed=0, observe=True)
            ),
        )
        bad = evaluate_slo(
            slo,
            slo_source_from_result(
                run_scenario(spec_for("two-faced"), seed=0, observe=True)
            ),
        )
        assert good["pass"]
        assert not bad["pass"]
        assert any(not o["pass"] for o in bad["objectives"])

    def test_source_from_snapshots_matches_result(self, tmp_path):
        result = run_scenario(
            spec_for("baseline"), seed=0, snapshot_dir=str(tmp_path), observe=True
        )
        path = next(tmp_path.glob("*.snapshots.jsonl"))
        from_stream = slo_source_from_snapshots(read_snapshots(str(path)))
        from_result = slo_source_from_result(result)
        assert canon(from_stream) == canon(from_result)

    def test_builtin_specs_and_bad_slo(self):
        assert set(builtin_slos()) >= {"default", "strict"}
        with pytest.raises(SLOError):
            load_slo("no-such-slo")
        with pytest.raises(SLOError):
            load_slo('{"objectives": "not-a-list"}')


# ----------------------------------------------------------------------
# Mission-control CLI
# ----------------------------------------------------------------------
class TestObserveCLI:
    @pytest.fixture()
    def rundir(self, tmp_path):
        run_campaign(
            builtin_specs(["baseline", "two-faced"], quick=True),
            base_seed=0,
            jobs=1,
            snapshot_dir=str(tmp_path),
            observe=True,
        )
        return tmp_path

    def test_status_renders_each_scenario(self, rundir, capsys):
        assert observe_main(["status", str(rundir)]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "two-faced" in out
        assert "done" in out

    def test_watch_once(self, rundir, capsys):
        assert observe_main(["watch", str(rundir), "--once", "--no-clear"]) == 0
        assert "baseline" in capsys.readouterr().out

    def test_slo_evaluate_exit_codes_and_artifacts(self, rundir, tmp_path, capsys):
        out_dir = tmp_path / "verdicts"
        code = observe_main(
            ["slo", "evaluate", str(rundir), "--slo", "default",
             "--out", str(out_dir)]
        )
        assert code == 1  # two-faced breaches
        printed = capsys.readouterr().out
        assert "FAIL" in printed and "PASS" in printed
        assert (out_dir / "two-faced.slo.json").is_file()
        assert (out_dir / "slo_scorecard.md").is_file()
        with open(out_dir / "baseline.slo.json", encoding="utf-8") as fh:
            assert json.load(fh)["pass"] is True

    def test_slo_evaluate_results_json(self, tmp_path, capsys):
        result = run_scenario(spec_for("baseline"), seed=0, observe=True)
        results_path = tmp_path / "results.json"
        results_path.write_text(canon({"baseline": result}), encoding="utf-8")
        code = observe_main(
            ["slo", "evaluate", "--results", str(results_path), "--slo", "default"]
        )
        assert code == 0
        assert "PASS" in capsys.readouterr().out

    def test_empty_rundir_and_bad_slo_are_errors(self, tmp_path):
        assert observe_main(["slo", "evaluate", str(tmp_path)]) == 2
        assert (
            observe_main(["slo", "evaluate", str(tmp_path), "--slo", "nope"]) == 2
        )

    def test_repro_cli_dispatch(self, rundir, capsys):
        assert repro_main(["status", str(rundir)]) == 0
        assert "baseline" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Health channel: real signals, explicitly nondeterministic
# ----------------------------------------------------------------------
class TestHealthChannel:
    def test_recorder_round_trip(self, tmp_path):
        rec = HealthRecorder(source="supervisor")
        rec.shard_grant(1, 1_000_000, 500_000)
        rec.shard_service(1_000_000, 0, 12, 250_000)
        rec.shard_stall(1_000_000, 1, 8)
        rec.task_state("baseline", "running", 1)
        rec.task_retry("baseline", 1, 2)
        rec.task_quarantine("baseline", "crash", 3)
        path = tmp_path / "campaign.health.jsonl"
        rec.write(str(path))

        health = read_health(str(path))
        header = health["header"]
        assert header["deterministic"] is False
        assert header["source"] == "supervisor"
        assert header["events"] == 6
        names = [event["name"] for event in health["events"]]
        assert names == [
            "shard-grant",
            "shard-service",
            "shard-stall",
            "supervisor-task",
            "supervisor-retry",
            "supervisor-quarantine",
        ]
        metrics = health["metrics"]["metrics"]
        assert sum(
            int(v)
            for v in metrics["observe_worker_retries_total"]["samples"].values()
        ) == 1
        assert sum(
            int(v)
            for v in metrics["observe_worker_quarantines_total"]["samples"].values()
        ) == 1

    def test_campaign_health_artifact(self, tmp_path):
        run_scenario(
            spec_for("baseline"),
            seed=0,
            backend="sharded",
            shards=2,
            shard_transport="inline",
            health_dir=str(tmp_path),
        )
        path = next(tmp_path.glob("*.health.jsonl"))
        health = read_health(str(path))
        assert health["header"]["deterministic"] is False
        assert str(health["header"]["source"]).startswith("shard-coordinator")


# ----------------------------------------------------------------------
# Racelab export rides along without touching fairness
# ----------------------------------------------------------------------
class TestRacelabExport:
    def test_trace_and_metrics_export(self, tmp_path):
        specs = race_specs(("baseline",), quick=True)
        plain = run_race_campaign(specs, disciplines=("pi", "daemon"), base_seed=3)
        exported = run_race_campaign(
            race_specs(("baseline",), quick=True),
            disciplines=("pi", "daemon"),
            base_seed=3,
            trace_dir=str(tmp_path / "traces"),
            metrics_dir=str(tmp_path / "metrics"),
        )
        # Per-discipline subdirectories, so scenario-keyed names can't collide.
        for discipline in ("pi", "daemon"):
            assert list((tmp_path / "traces" / discipline).iterdir())
            assert list((tmp_path / "metrics" / discipline).iterdir())
        # The fairness digest ignores the telemetry overlay: exporting
        # changes nothing about who won or what the scenario did.
        assert (
            exported["baseline"]["scenario_digest"]
            == plain["baseline"]["scenario_digest"]
        )
        assert canon(exported["baseline"]["entries"]) == canon(
            plain["baseline"]["entries"]
        )
