"""Timeline reconstruction from EV_* records vs direct simulation sampling.

The tentpole claim: per-node counter series (and hence pair offsets) can be
rebuilt **purely from the trace** — EV_TX beacon anchors plus nominal-rate
extrapolation — and agree with ground truth sampled live from the
``DtpNetwork`` to within anchor quantization (2 ticks).  The hypothesis
test sweeps random chain depths, skews, and seeds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.network import DtpNetwork
from repro.insight import (
    CAUSE_BEACON,
    CAUSE_JOIN,
    reconstruct_timeline,
)
from repro.network.topology import chain
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.telemetry import Telemetry, TraceIndex
from repro.telemetry.events import EV_JUMP

#: Anchor quantization: each node's gc estimate rounds to the nearest
#: anchor tick, so a pair offset can be off by 1 tick per node.
RECONSTRUCTION_TOLERANCE_TICKS = 2

ppm = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _traced_chain(hosts, ppms, seed, duration_fs, sample_interval_fs):
    """Run a traced chain, sampling ground-truth pair offsets live."""
    sim = Simulator()
    streams = RandomStreams(root_seed=seed)
    telemetry = Telemetry()
    skews = {f"n{i}": ConstantSkew(ppms[i % len(ppms)]) for i in range(hosts)}
    net = DtpNetwork(sim, chain(hosts), streams, skews=skews, telemetry=telemetry)
    net.start()

    pairs = [(f"n{i}", f"n{j}") for i in range(hosts) for j in range(i + 1, hosts)]
    truth = {pair: [] for pair in pairs}

    def _sample():
        if net.all_synchronized():
            for a, b in pairs:
                truth[(a, b)].append((sim.now, net.pair_offset(a, b)))
        sim.schedule(sample_interval_fs, _sample)

    sim.schedule(sample_interval_fs, _sample)
    sim.run_until(duration_fs)
    return net, telemetry, truth


def test_timeline_series_shapes():
    _net, telemetry, _truth = _traced_chain(
        3, (40.0, -40.0, 10.0), seed=7,
        duration_fs=400 * units.US, sample_interval_fs=50 * units.US,
    )
    index = TraceIndex.from_recorder(telemetry.tracer)
    timeline = reconstruct_timeline(index)
    assert sorted(timeline.ports) == [
        "n0->n1", "n1->n0", "n1->n2", "n2->n1",
    ]
    assert timeline.links() == [("n0", "n1"), ("n1", "n2")]
    for port in timeline.ports.values():
        assert port.measured_d() is not None
        assert port.beacon_rx_times == sorted(port.beacon_rx_times)
        gaps = port.beacon_intervals_fs()
        assert gaps and port.max_beacon_interval_fs() == max(gaps)
    for node in ("n0", "n1", "n2"):
        anchors = timeline.nodes[node].anchors
        assert anchors == sorted(anchors)
        assert len(anchors) > 100


def test_jump_causes_classified():
    _net, telemetry, _truth = _traced_chain(
        3, (100.0, -100.0, 0.0), seed=11,
        duration_fs=400 * units.US, sample_interval_fs=100 * units.US,
    )
    index = TraceIndex.from_recorder(telemetry.tracer)
    timeline = reconstruct_timeline(index)
    causes = {
        cause
        for port in timeline.ports.values()
        for _t, _d, _a, cause in port.jumps
    }
    assert causes  # ±100 ppm must produce T4 jumps
    assert causes <= {CAUSE_BEACON, CAUSE_JOIN}
    total_jumps = sum(len(p.jumps) for p in timeline.ports.values())
    assert total_jumps == len(index.of_kind(EV_JUMP))


def test_gc_extrapolation_matches_anchor_exactly():
    _net, telemetry, _truth = _traced_chain(
        2, (0.0, 0.0), seed=3,
        duration_fs=300 * units.US, sample_interval_fs=100 * units.US,
    )
    timeline = reconstruct_timeline(TraceIndex.from_recorder(telemetry.tracer))
    anchors = timeline.nodes["n0"].anchors
    t, low = anchors[len(anchors) // 2]
    assert timeline.gc_low_at("n0", t) == low
    # One nominal period later the counter advanced by exactly increment.
    assert timeline.gc_low_at("n0", t + timeline.period_fs) == low + 1
    # Extrapolation cap respected.
    far = anchors[-1][0] + 10**12
    assert timeline.gc_low_at("n0", far, max_extrapolation_fs=10**6) is None
    assert timeline.gc_low_at("missing", t) is None


# Derandomized like the faultlab property tests: CI must be reproducible.
@settings(max_examples=6, deadline=None, derandomize=True, database=None)
@given(
    hosts=st.integers(min_value=2, max_value=4),
    ppms=st.tuples(ppm, ppm, ppm, ppm),
    seed=st.integers(0, 2**20),
)
def test_reconstructed_offsets_match_direct_sampling(hosts, ppms, seed):
    """Satellite: trace-rebuilt offset series vs live DtpNetwork sampling."""
    _net, telemetry, truth = _traced_chain(
        hosts, ppms, seed,
        duration_fs=500 * units.US, sample_interval_fs=40 * units.US,
    )
    index = TraceIndex.from_recorder(telemetry.tracer)
    timeline = reconstruct_timeline(index)
    beacon_interval_fs = 200 * timeline.period_fs
    compared = 0
    for (a, b), samples in truth.items():
        for t, true_offset in samples:
            rebuilt = timeline.pair_offset_at(
                a, b, t, max_extrapolation_fs=4 * beacon_interval_fs
            )
            if rebuilt is None:
                continue
            compared += 1
            assert abs(rebuilt - true_offset) <= RECONSTRUCTION_TOLERANCE_TICKS, (
                f"pair {a}-{b} at t={t}: trace says {rebuilt}, "
                f"simulation says {true_offset}"
            )
    assert compared > 0
