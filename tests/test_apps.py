"""Tests for the applications package (Section 1's motivations)."""

import pytest

from repro.apps.owd import OneWayDelayMeter
from repro.apps.snapshot import SnapshotCoordinator
from repro.apps.tdma import TdmaSchedule, run_tdma_round
from repro.clocks.oscillator import ConstantSkew
from repro.clocks.tsc import TscCounter
from repro.dtp.daemon import DtpDaemon
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.network.packet import PacketNetwork
from repro.network.topology import paper_testbed, star
from repro.network.virtualload import heavy_backlog
from repro.sim import units


@pytest.fixture
def dual_plane(sim, streams):
    """DTP control plane + packet data plane on a small star."""
    topology = star(3)
    dtp = DtpNetwork(
        sim, topology, streams,
        config=DtpPortConfig(beacon_interval_ticks=1200),
    )
    dtp.start()
    packets = PacketNetwork(sim, topology)
    sim.run_until(2 * units.MS)
    daemons = {}
    for i, name in enumerate(("h0", "h1")):
        tsc = TscCounter(skew=ConstantSkew(2.0 * i - 3.0), name=f"tsc/{name}")
        daemons[name] = DtpDaemon(
            sim, dtp.devices[name], tsc, streams.stream(f"d/{name}"),
            sample_interval_fs=units.MS, smoothing_window=4,
        )
        daemons[name].start()
    sim.run_until(8 * units.MS)
    return dtp, packets, daemons


class TestOwdMeter:
    def test_owd_error_is_daemon_scale(self, sim, dual_plane):
        dtp, packets, daemons = dual_plane
        meter = OneWayDelayMeter(sim, packets, daemons)
        for _ in range(40):
            meter.probe("h0", "h1")
            sim.run_until(sim.now + 300 * units.US)
        assert len(meter.samples) == 40
        assert meter.worst_error_fs() < 500 * units.NS

    def test_owd_sees_congestion_truthfully(self, sim, streams, dual_plane):
        dtp, packets, daemons = dual_plane
        # Congest the switch->h1 egress; the METER should report the
        # inflated delays accurately (error stays small).
        packets.switches["sw0"].interfaces["h1"].virtual_load = heavy_backlog(
            streams.stream("cong")
        )
        meter = OneWayDelayMeter(sim, packets, daemons)
        for _ in range(30):
            meter.probe("h0", "h1")
            sim.run_until(sim.now + 300 * units.US)
        owds = [s.owd_fs for s in meter.samples]
        assert max(owds) > 50 * units.US  # congestion visible
        assert meter.worst_error_fs() < 500 * units.NS  # but measured truly

    def test_probe_requires_daemons(self, sim, dual_plane):
        _, packets, daemons = dual_plane
        meter = OneWayDelayMeter(sim, packets, daemons)
        with pytest.raises(KeyError):
            meter.probe("h0", "h2")  # h2 has no daemon

    def test_no_samples_no_error(self, sim, dual_plane):
        _, packets, daemons = dual_plane
        meter = OneWayDelayMeter(sim, packets, daemons)
        assert meter.worst_error_fs() is None


class TestTdma:
    def test_schedule_geometry(self):
        schedule = TdmaSchedule(senders=("a", "b"), slot_fs=1000, rounds=3)
        assert schedule.slot_start_fs(0, 0) == 0
        assert schedule.slot_start_fs(0, 1) == 1000
        assert schedule.slot_start_fs(1, 0) == 2000
        assert schedule.total_duration_fs() == 6000

    def test_tight_clocks_no_collisions(self):
        receiver = run_tdma_round(clock_error_fs=26 * units.NS, rounds=100)
        assert receiver.collision_fraction() == 0.0
        assert receiver.worst_queueing_fs() < 100 * units.NS

    def test_loose_clocks_collide(self):
        tight = run_tdma_round(clock_error_fs=26 * units.NS, rounds=100)
        loose = run_tdma_round(clock_error_fs=150_000 * units.NS, rounds=100)
        assert loose.worst_queueing_fs() > 10 * tight.worst_queueing_fs() + units.US
        assert loose.collision_fraction() > 0.1

    def test_all_frames_delivered(self):
        receiver = run_tdma_round(clock_error_fs=0, senders=3, rounds=50)
        assert len(receiver.queueing_delays_fs) == 150


class TestSnapshot:
    def test_snapshot_skew_within_sync_bound(self, sim, streams):
        net = DtpNetwork(sim, paper_testbed(), streams)
        net.start()
        sim.run_until(units.MS)
        coordinator = SnapshotCoordinator(net)
        result = coordinator.schedule_snapshot(lead_time_fs=200 * units.US)
        sim.run_until(sim.now + 2 * units.MS)
        assert len(result.fire_times_fs) == 12  # every device fired
        bound_fs = 4 * net.topology.diameter_hops() * units.TICK_10G_FS
        assert result.skew_fs <= bound_fs + units.TICK_10G_FS

    def test_snapshot_fires_near_lead_time(self, sim, streams):
        net = DtpNetwork(sim, paper_testbed(), streams)
        net.start()
        sim.run_until(units.MS)
        start = sim.now
        coordinator = SnapshotCoordinator(net)
        result = coordinator.schedule_snapshot(lead_time_fs=300 * units.US)
        sim.run_until(sim.now + 2 * units.MS)
        first = min(result.fire_times_fs.values())
        assert first == pytest.approx(start + 300 * units.US, abs=2 * units.US)

    def test_callback_invoked_per_device(self, sim, streams):
        net = DtpNetwork(sim, paper_testbed(), streams)
        net.start()
        sim.run_until(units.MS)
        fired = []
        coordinator = SnapshotCoordinator(net)
        coordinator.schedule_snapshot(
            lead_time_fs=100 * units.US,
            on_fire=lambda name, t: fired.append(name),
        )
        sim.run_until(sim.now + units.MS)
        assert sorted(fired) == sorted(net.devices)
