"""Heterogeneous-speed DTP networks (paper Section 7).

Servers at 1/10 GbE, uplinks at 40/100 GbE: counters tick in the common
0.32 ns unit with per-speed increments (Table 2's delta), so one time base
spans the whole fabric.
"""

import pytest

from repro.dtp.network import DtpNetwork
from repro.network.topology import chain, star, two_level_tree
from repro.phy.specs import COMMON_COUNTER_UNIT_FS, PHY_1G, PHY_10G, PHY_40G, PHY_100G
from repro.sim import units


def worst_offset(net, sim, duration_fs, warmup_fs=units.MS):
    sim.run_until(warmup_fs)
    worst = 0
    t = sim.now
    while t < duration_fs:
        t += 20 * units.US
        sim.run_until(t)
        worst = max(worst, net.max_abs_offset())
    return worst


class TestMixedSpeeds:
    def test_10g_to_100g_link(self, sim, streams):
        specs = {"n0": PHY_10G, "n1": PHY_100G}
        net = DtpNetwork(sim, chain(2), streams, device_specs=specs)
        net.start()
        worst = worst_offset(net, sim, 3 * units.MS)
        # Per-link error budget in common units: the slower side's tick
        # dominates every quantization, so 4 ticks of each side combined.
        bound_units = 4 * (PHY_10G.counter_increment + PHY_100G.counter_increment)
        assert worst <= bound_units

    def test_all_four_speeds_in_one_star(self, sim, streams):
        specs = {
            "sw0": PHY_100G,
            "h0": PHY_10G,
            "h1": PHY_40G,
            "h2": PHY_10G,
            "h3": PHY_1G,
        }
        net = DtpNetwork(sim, star(4), streams, device_specs=specs)
        net.start()
        worst = worst_offset(net, sim, 3 * units.MS)
        assert net.all_synchronized()
        # Worst path: 1G host to any host via the 100G switch; each link
        # contributes ~4 ticks of its slower end.
        bound_units = 4 * PHY_1G.counter_increment + 4 * PHY_10G.counter_increment
        assert worst <= bound_units
        assert worst * COMMON_COUNTER_UNIT_FS <= 64 * units.NS

    def test_counters_advance_at_common_rate(self, sim, streams):
        """All devices count ~3.125 units per ns regardless of speed."""
        specs = {"n0": PHY_10G, "n1": PHY_100G}
        net = DtpNetwork(sim, chain(2), streams, device_specs=specs)
        net.start()
        sim.run_until(2 * units.MS)
        expected = 2 * units.MS // COMMON_COUNTER_UNIT_FS
        for name in ("n0", "n1"):
            assert net.counter_of(name) == pytest.approx(expected, rel=1e-3)

    def test_datacenter_shape_fast_core(self, sim, streams):
        """The Section 7 deployment: 10G at the edge, 40G aggregation."""
        topology = two_level_tree(2, 2)
        specs = {"s0": PHY_40G, "s1": PHY_40G, "s2": PHY_40G}
        for host in topology.hosts():
            specs[host] = PHY_10G
        net = DtpNetwork(sim, topology, streams, device_specs=specs)
        net.start()
        worst = worst_offset(net, sim, 3 * units.MS)
        assert net.all_synchronized()
        # 4 hops max, dominated by the 10G edges: stay within 4 hops of
        # 4x the 10G increment.
        assert worst <= 4 * 4 * PHY_10G.counter_increment

    def test_unspecified_devices_use_default_spec(self, sim, streams):
        net = DtpNetwork(
            sim, chain(2), streams, device_specs={"n0": PHY_100G}
        )
        assert net.devices["n1"].counter_increment == PHY_10G.counter_increment
        assert net.devices["n0"].counter_increment == PHY_100G.counter_increment
