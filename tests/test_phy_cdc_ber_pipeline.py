"""Unit tests for CDC FIFO, bit-error injection, and pipeline latencies."""

import random

import pytest

from repro.clocks.oscillator import ConstantSkew, Oscillator
from repro.phy.ber import BitErrorInjector, parity_of_lsbs
from repro.phy.cdc import SyncFifo
from repro.phy.pipeline import (
    PhyLatencyConfig,
    advance_ticks,
    rx_process_time,
    tx_exit_time,
)
from repro.sim import units

TICK = units.TICK_10G_FS


def make_osc(ppm=0.0):
    return Oscillator(TICK, ConstantSkew(ppm))


class TestSyncFifo:
    def test_delivery_is_after_arrival(self):
        fifo = SyncFifo(make_osc(), random.Random(1))
        for t in range(0, 50 * TICK, 7 * TICK // 3):
            assert fifo.delivery_time(t) > t

    def test_delivery_on_clock_edge(self):
        osc = make_osc()
        fifo = SyncFifo(osc, random.Random(2))
        t = 13 * TICK + 1234
        delivered = fifo.delivery_time(t)
        assert osc.ticks_at(delivered) == osc.ticks_at(delivered - 1) + 1

    def test_delay_spread_at_most_two_ticks(self):
        """Quantization (<1 tick) + metastability (0-1 tick)."""
        fifo = SyncFifo(make_osc(), random.Random(3))
        arrival = 10 * TICK + 17
        delays = {fifo.delivery_time(arrival) - arrival for _ in range(200)}
        assert max(delays) - min(delays) <= TICK
        assert max(delays) <= 2 * TICK

    def test_disabled_fifo_is_deterministic(self):
        fifo = SyncFifo(make_osc(), random.Random(4), enabled=False)
        arrival = 5 * TICK + 99
        assert len({fifo.delivery_time(arrival) for _ in range(50)}) == 1

    def test_crossing_counter(self):
        fifo = SyncFifo(make_osc(), random.Random(5))
        fifo.delivery_time(0)
        fifo.delivery_time(TICK)
        assert fifo.crossings == 2


class TestBitErrorInjector:
    def test_zero_ber_never_corrupts(self):
        injector = BitErrorInjector(0.0, random.Random(1))
        for _ in range(100):
            assert injector.corrupt(0xABCD, 66) == 0xABCD
        assert injector.errors_injected == 0

    def test_high_ber_corrupts(self):
        injector = BitErrorInjector(0.5, random.Random(2))
        corrupted = 0
        for _ in range(100):
            if injector.corrupt(0, 66) != 0:
                corrupted += 1
        assert corrupted > 90

    def test_error_rate_approximately_matches(self):
        ber = 1e-3
        injector = BitErrorInjector(ber, random.Random(3))
        bits = 2_000_000
        injector.corrupt(0, bits)
        expected = bits * ber
        assert 0.7 * expected < injector.errors_injected < 1.3 * expected

    def test_invalid_ber_rejected(self):
        with pytest.raises(ValueError):
            BitErrorInjector(-0.1, random.Random(1))
        with pytest.raises(ValueError):
            BitErrorInjector(1.0, random.Random(1))

    def test_corruption_flips_only_within_width(self):
        injector = BitErrorInjector(0.3, random.Random(4))
        for _ in range(100):
            corrupted = injector.corrupt(0, 8)
            assert corrupted < (1 << 8)

    def test_parity_of_lsbs(self):
        assert parity_of_lsbs(0b000) == 0
        assert parity_of_lsbs(0b001) == 1
        assert parity_of_lsbs(0b011) == 0
        assert parity_of_lsbs(0b111) == 1
        assert parity_of_lsbs(0b1000) == 0  # only three LSBs count


class TestPipeline:
    def test_advance_ticks(self):
        osc = make_osc()
        t = advance_ticks(osc, 0, 5)
        assert osc.ticks_at(t) == 5

    def test_tx_exit_after_pipeline(self):
        osc = make_osc()
        config = PhyLatencyConfig(tx_pipeline_ticks=18)
        exit_fs = tx_exit_time(osc, 10 * TICK, config)
        assert osc.ticks_at(exit_fs) == 28

    def test_rx_process_includes_pipeline_and_cdc(self):
        osc = make_osc()
        fifo = SyncFifo(osc, random.Random(6))
        config = PhyLatencyConfig(rx_pipeline_ticks=18)
        arrival = 100 * TICK + 5
        processed = rx_process_time(arrival, fifo, osc, config)
        elapsed_ticks = osc.ticks_at(processed) - osc.ticks_at(arrival)
        assert 19 <= elapsed_ticks <= 20  # quantize(1) + cdc(0..1) + 18

    def test_negative_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PhyLatencyConfig(tx_pipeline_ticks=-1)

    def test_default_owd_matches_paper(self):
        """TX 18 + RX 18 + ~8 ticks of 10.24 m cable ~= 44-46 cycles.

        The paper measured 43-45 cycles (~280 ns) over its 10 m runs.
        """
        config = PhyLatencyConfig()
        cable_ticks = round(10.24 * units.FIBER_DELAY_FS_PER_M / TICK)
        owd = config.tx_pipeline_ticks + config.rx_pipeline_ticks + cable_ticks
        assert 42 <= owd <= 46
