"""Unit tests for the DTP port FSM (Algorithm 1)."""

import pytest

from repro.clocks.oscillator import ConstantSkew, Oscillator
from repro.dtp.device import DtpDevice
from repro.dtp.messages import MessageType
from repro.dtp.port import DtpPort, DtpPortConfig, PortState
from repro.ethernet.frames import MTU_FRAME
from repro.ethernet.traffic import SaturatedTraffic
from repro.sim import units

TICK = units.TICK_10G_FS
CABLE_FS = 8 * TICK  # default 10.24 m


def make_pair(
    sim,
    streams,
    ppm_a=100.0,
    ppm_b=-100.0,
    config_a=None,
    config_b=None,
):
    dev_a = DtpDevice(sim, "a", Oscillator(TICK, ConstantSkew(ppm_a)), streams.fork("a"))
    dev_b = DtpDevice(sim, "b", Oscillator(TICK, ConstantSkew(ppm_b)), streams.fork("b"))
    port_a = DtpPort(dev_a, "a->b", config=config_a or DtpPortConfig())
    port_b = DtpPort(dev_b, "b->a", config=config_b or DtpPortConfig())
    port_a.connect(port_b, CABLE_FS, CABLE_FS)
    return port_a, port_b


class TestInitPhase:
    def test_handshake_synchronizes_both_sides(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(100 * units.US)
        assert a.state is PortState.SYNCHRONIZED
        assert b.state is PortState.SYNCHRONIZED

    def test_owd_measured_matches_paper_range(self, sim, streams):
        """Paper Section 6.1: 43-45 cycles over ~10 m."""
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(100 * units.US)
        assert 42 <= a.d <= 45
        assert 42 <= b.d <= 45

    def test_measured_owd_never_exceeds_true_path(self, sim, streams):
        """The alpha=3 guarantee that keeps the network from running fast."""
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(100 * units.US)
        # True path floor: tx 18 + cable 8 + rx 18 = 44 ticks.
        assert a.d <= 44
        assert b.d <= 44

    def test_link_up_without_peer_raises(self, sim, streams):
        device = DtpDevice(sim, "x", Oscillator(TICK, ConstantSkew(0.0)), streams.fork("x"))
        port = DtpPort(device, "p")
        with pytest.raises(RuntimeError):
            port.link_up()

    def test_init_retries_until_acked(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()  # peer stays down: INIT goes nowhere
        sim.run_until(2 * units.MS)
        assert a.stats.sent.get("INIT", 0) > 1
        b.link_up()
        sim.run_until(3 * units.MS)
        assert a.state is PortState.SYNCHRONIZED

    def test_t0_adopts_global_counter(self, sim, streams):
        a, b = make_pair(sim, streams)
        t = 50 * TICK
        sim.run_until(t)
        a.device.gc.set_counter(t, 999_999)
        a.link_up()
        assert a.lc.counter_at(t) == 999_999


class TestBeaconPhase:
    def test_beacons_flow_after_init(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(units.MS)
        assert a.stats.sent.get("BEACON", 0) > 100
        assert b.stats.received.get("BEACON", 0) > 100

    def test_slow_clock_jumps_fast_never(self, sim, streams):
        fast, slow = make_pair(sim, streams, ppm_a=100.0, ppm_b=-100.0)
        fast.link_up()
        slow.link_up()
        sim.run_until(5 * units.MS)
        assert slow.stats.jumps > 0
        assert fast.stats.jumps == 0

    def test_offset_bounded_by_four_ticks(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(units.MS)
        worst = 0
        t = sim.now
        for _ in range(500):
            t += 7 * units.US
            sim.run_until(t)
            offset = abs(
                a.device.global_counter(t) - b.device.global_counter(t)
            )
            worst = max(worst, offset)
        assert worst <= 4

    def test_beacon_cadence_respects_interval(self, sim, streams):
        config = DtpPortConfig(beacon_interval_ticks=1000)
        a, b = make_pair(sim, streams, config_a=config, config_b=config)
        a.link_up()
        b.link_up()
        sim.run_until(units.MS)
        # 1 ms / (1000 ticks * 6.4 ns) ~ 156 beacons.
        assert 120 <= a.stats.sent.get("BEACON", 0) <= 170

    def test_msb_beacons_sent_periodically(self, sim, streams):
        config = DtpPortConfig(msb_interval_beacons=50)
        a, b = make_pair(sim, streams, config_a=config, config_b=config)
        a.link_up()
        b.link_up()
        sim.run_until(units.MS)
        assert a.stats.sent.get("BEACON_MSB", 0) >= 10
        assert b.remote_msb is not None

    def test_link_down_stops_beacons(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(units.MS)
        a.link_down()
        count = a.stats.sent.get("BEACON", 0)
        sim.run_until(2 * units.MS)
        assert a.stats.sent.get("BEACON", 0) == count


class TestLoadedLinks:
    def test_sync_holds_under_saturated_traffic(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(200 * units.US)
        from repro.ethernet.traffic import DelayedTraffic

        start_tick = a.osc.ticks_at(sim.now) + 100
        a.traffic = DelayedTraffic(SaturatedTraffic(MTU_FRAME), start_tick)
        b.traffic = DelayedTraffic(SaturatedTraffic(MTU_FRAME, phase=50), start_tick)
        sim.run_until(3 * units.MS)
        offset = abs(
            a.device.global_counter(sim.now) - b.device.global_counter(sim.now)
        )
        assert offset <= 4


class TestFaultHandling:
    def test_out_of_range_beacons_rejected(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(500 * units.US)
        # Forge a wildly wrong beacon into b's processing path.
        from repro.dtp import messages as m

        bogus_counter = b.lc.counter_at(sim.now) + 1_000_000
        bits = m.encode(m.DtpMessage(m.MessageType.BEACON, m.counter_low(bogus_counter)))
        before = b.lc.counter_at(sim.now)
        b._process(bits)
        assert b.stats.rejected_out_of_range == 1
        assert b.lc.counter_at(sim.now) - before <= 1

    def test_jump_rate_fault_detector_fires(self, sim, streams):
        config = DtpPortConfig(
            fault_window_beacons=100, max_jumps_per_window=5
        )
        # A wildly fast peer (out of IEEE spec) forces constant jumps.
        a, b = make_pair(
            sim, streams, ppm_a=5000.0, ppm_b=0.0,
            config_a=config, config_b=config,
        )
        faults = []
        b.on_fault = faults.append
        a.link_up()
        b.link_up()
        sim.run_until(5 * units.MS)
        assert b.peer_faulty
        assert faults == [b]

    def test_parity_mode_roundtrip(self, sim, streams):
        config_a = DtpPortConfig(parity=True)
        config_b = DtpPortConfig(parity=True)
        a, b = make_pair(sim, streams, config_a=config_a, config_b=config_b)
        a.link_up()
        b.link_up()
        sim.run_until(2 * units.MS)
        offset = abs(
            a.device.global_counter(sim.now) - b.device.global_counter(sim.now)
        )
        assert offset <= 4
        assert b.stats.rejected_parity == 0

    def test_parity_rejects_lsb_corruption(self, sim, streams):
        config = DtpPortConfig(parity=True)
        a, b = make_pair(sim, streams, config_a=config, config_b=config)
        a.link_up()
        b.link_up()
        sim.run_until(500 * units.US)
        from repro.dtp import messages as m

        good = m.payload_with_parity(b.lc.counter_at(sim.now))
        corrupted = good ^ 0b1  # flip an LSB: parity now wrong
        bits = m.encode(m.DtpMessage(m.MessageType.BEACON, corrupted))
        b._process(bits)
        assert b.stats.rejected_parity == 1

    def test_undecodable_message_dropped(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(500 * units.US)
        bits = (0b111 << 53) | 42  # invalid type code
        b._process(bits)
        assert b.stats.rejected_undecodable == 1


class TestLogChannel:
    def test_log_offset_within_four_ticks(self, sim, streams):
        a, b = make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(units.MS)
        offsets = []
        b.on_log = lambda offset, counter, t: offsets.append(offset)
        for _ in range(100):
            a.send_log()
            sim.run_until(sim.now + 10 * units.US)
        assert offsets
        assert all(-4 <= o <= 4 for o in offsets)
