"""Unit tests for the PTP best-master-clock algorithm and boundary clocks."""


from repro.clocks.clock import AdjustableFrequencyClock
from repro.clocks.oscillator import ConstantSkew, Oscillator
from repro.network.packet import PacketNetwork
from repro.network.topology import star
from repro.phy.specs import PHY_10G
from repro.ptp.bmc import ClockQuality, OrdinaryClock
from repro.ptp.boundary import BoundaryClock
from repro.ptp.master import PtpMaster
from repro.ptp.slave import PtpSlave
from repro.sim import units


def make_clock(ppm: float) -> AdjustableFrequencyClock:
    return AdjustableFrequencyClock(
        Oscillator(PHY_10G.period_fs, ConstantSkew(ppm))
    )


def build_bmc(sim, streams, qualities):
    network = PacketNetwork(sim, star(len(qualities)))
    hosts = [f"h{i}" for i in range(len(qualities))]
    clocks = {h: make_clock(3.0 * i - 3) for i, h in enumerate(hosts)}
    nodes = {}
    for host, quality in zip(hosts, qualities):
        nodes[host] = OrdinaryClock(
            sim, network, host, quality, hosts, clocks[host],
            streams.stream(host), sync_interval_fs=units.SEC,
        )
    for node in nodes.values():
        node.start()
    return nodes, clocks


class TestClockQuality:
    def test_ordering_by_priority1_first(self):
        good = ClockQuality(priority1=1, identity="a")
        bad = ClockQuality(priority1=2, clock_class=0, identity="b")
        assert good.as_tuple() < bad.as_tuple()

    def test_identity_breaks_ties(self):
        a = ClockQuality(identity="a")
        b = ClockQuality(identity="b")
        assert a.as_tuple() < b.as_tuple()


class TestElection:
    def test_best_quality_wins(self, sim, streams):
        nodes, _ = build_bmc(
            sim, streams,
            [ClockQuality(priority1=50, identity="h0"),
             ClockQuality(priority1=10, identity="h1"),
             ClockQuality(priority1=99, identity="h2")],
        )
        sim.run_until(20 * units.SEC)
        assert nodes["h1"].role == OrdinaryClock.ROLE_MASTER
        assert nodes["h0"].role == OrdinaryClock.ROLE_SLAVE
        assert nodes["h0"].current_master == "h1"

    def test_slaves_synchronize_to_elected_master(self, sim, streams):
        nodes, clocks = build_bmc(
            sim, streams,
            [ClockQuality(priority1=10, identity="h0"),
             ClockQuality(priority1=20, identity="h1"),
             ClockQuality(priority1=30, identity="h2")],
        )
        sim.run_until(120 * units.SEC)
        offset = abs(
            clocks["h2"].time_at(sim.now) - clocks["h0"].time_at(sim.now)
        )
        assert offset < 2 * units.US

    def test_failover_to_next_best(self, sim, streams):
        nodes, _ = build_bmc(
            sim, streams,
            [ClockQuality(priority1=10, identity="h0"),
             ClockQuality(priority1=20, identity="h1"),
             ClockQuality(priority1=30, identity="h2")],
        )
        sim.run_until(20 * units.SEC)
        assert nodes["h0"].role == OrdinaryClock.ROLE_MASTER
        nodes["h0"].stop()  # grandmaster dies
        sim.run_until(60 * units.SEC)
        assert nodes["h1"].role == OrdinaryClock.ROLE_MASTER
        assert nodes["h2"].current_master == "h1"

    def test_elections_counted(self, sim, streams):
        nodes, _ = build_bmc(
            sim, streams,
            [ClockQuality(priority1=10, identity="h0"),
             ClockQuality(priority1=20, identity="h1")],
        )
        sim.run_until(20 * units.SEC)
        assert nodes["h0"].elections >= 1
        assert nodes["h1"].elections >= 1


class TestBoundaryClock:
    def build_chain(self, sim, streams):
        network = PacketNetwork(sim, star(3))
        gm_clock = make_clock(0.0)
        bc_clock = make_clock(25.0)
        leaf_clock = make_clock(-20.0)
        master = PtpMaster(
            sim, network, "h0", gm_clock, slaves=["h1"],
            sync_interval_fs=units.SEC,
        )
        bc = BoundaryClock(
            sim, network, "h1", "h0", ["h2"], bc_clock,
            streams.stream("bc"), sync_interval_fs=units.SEC,
        )
        leaf = PtpSlave(
            sim, network, "h2", "h1", leaf_clock,
            streams.stream("leaf"), sync_interval_fs=units.SEC,
        )
        master.start()
        bc.start()
        return gm_clock, bc_clock, leaf_clock, bc, leaf

    def test_bc_tracks_grandmaster(self, sim, streams):
        gm, bc_clock, _, bc, _ = self.build_chain(sim, streams)
        sim.run_until(120 * units.SEC)
        assert abs(bc_clock.time_at(sim.now) - gm.time_at(sim.now)) < units.US

    def test_leaf_tracks_via_bc(self, sim, streams):
        gm, _, leaf_clock, _, leaf = self.build_chain(sim, streams)
        sim.run_until(120 * units.SEC)
        assert abs(leaf_clock.time_at(sim.now) - gm.time_at(sim.now)) < 2 * units.US

    def test_leaf_error_exceeds_bc_error(self, sim, streams):
        """The cascade: each level adds servo noise (Section 2.4.2)."""
        gm, bc_clock, leaf_clock, _, _ = self.build_chain(sim, streams)
        worst_bc = 0.0
        worst_leaf = 0.0
        for second in range(1, 181):
            sim.run_until(second * units.SEC)
            if second > 90:
                worst_bc = max(worst_bc, abs(bc_clock.time_at(sim.now) - gm.time_at(sim.now)))
                worst_leaf = max(worst_leaf, abs(leaf_clock.time_at(sim.now) - gm.time_at(sim.now)))
        assert worst_leaf > worst_bc

    def test_stop_disables_both_roles(self, sim, streams):
        _, _, _, bc, _ = self.build_chain(sim, streams)
        sim.run_until(10 * units.SEC)
        bc.stop()
        count = bc.master.syncs_sent
        sim.run_until(30 * units.SEC)
        assert bc.master.syncs_sent <= count + 1
        assert not bc.slave.enabled
