"""Unit tests for named random streams."""

from repro.sim.randomness import RandomStreams


def test_same_name_returns_same_stream():
    streams = RandomStreams(1)
    assert streams.stream("a") is streams.stream("a")


def test_different_names_are_independent():
    streams = RandomStreams(1)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_same_seed_reproduces_sequences():
    first = RandomStreams(42).stream("x")
    second = RandomStreams(42).stream("x")
    assert [first.random() for _ in range(10)] == [second.random() for _ in range(10)]


def test_different_seeds_differ():
    first = RandomStreams(1).stream("x")
    second = RandomStreams(2).stream("x")
    assert [first.random() for _ in range(5)] != [second.random() for _ in range(5)]


def test_stream_isolation_from_creation_order():
    forward = RandomStreams(7)
    values_a = [forward.stream("a").random() for _ in range(3)]

    backward = RandomStreams(7)
    backward.stream("b")  # create b first this time
    values_a_again = [backward.stream("a").random() for _ in range(3)]
    assert values_a == values_a_again


def test_fork_produces_independent_factory():
    root = RandomStreams(9)
    child = root.fork("child")
    assert child.root_seed != root.root_seed
    root_values = [root.stream("s").random() for _ in range(3)]
    child_values = [child.stream("s").random() for _ in range(3)]
    assert root_values != child_values


def test_fork_is_deterministic():
    one = RandomStreams(9).fork("child").stream("s").random()
    two = RandomStreams(9).fork("child").stream("s").random()
    assert one == two
