"""Unit tests for time/rate units."""

import pytest

from repro.sim import units


def test_unit_ladder():
    assert units.PS == 1000
    assert units.NS == 10**6
    assert units.US == 10**9
    assert units.MS == 10**12
    assert units.SEC == 10**15


def test_tick_10g_is_6_4_ns():
    assert units.TICK_10G_FS == 6_400_000
    assert units.TICK_10G_FS / units.NS == pytest.approx(6.4)


def test_fs_seconds_roundtrip():
    assert units.seconds_from_fs(units.fs_from_seconds(1.5)) == pytest.approx(1.5)


def test_fs_from_ns():
    assert units.fs_from_ns(6.4) == 6_400_000


def test_ns_from_fs():
    assert units.ns_from_fs(12_800_000) == pytest.approx(12.8)


def test_ppm_to_fraction():
    assert units.ppm_to_fraction(100.0) == pytest.approx(1e-4)


def test_period_for_positive_ppm_is_shorter():
    nominal = units.TICK_10G_FS
    fast = units.period_fs_for_ppm(nominal, 100.0)
    slow = units.period_fs_for_ppm(nominal, -100.0)
    assert fast < nominal < slow


def test_period_for_zero_ppm_is_nominal():
    assert units.period_fs_for_ppm(units.TICK_10G_FS, 0.0) == units.TICK_10G_FS


def test_period_is_at_least_one():
    assert units.period_fs_for_ppm(1, 1e9) >= 1


def test_fiber_delay_5ns_per_meter():
    assert units.FIBER_DELAY_FS_PER_M == 5 * units.NS
