"""Model-based equivalence test for the tuple-heap simulation engine.

The engine keeps ``(time, seq, fn, args, event)`` tuples on the heap,
dispatches through local bindings, and compacts lazily-cancelled entries
in place.  None of that may change observable behavior, so this test runs
arbitrary schedule / post / cancel / run_until programs — including
callbacks that schedule follow-ups and cancel other events mid-run —
against a deliberately naive reference model (a sorted list, no heap, no
lazy deletion) and requires the execution traces to match exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class _ModelEvent:
    def __init__(self, time, seq, key, chain, cancellable):
        self.time = time
        self.seq = seq
        self.key = key
        self.chain = chain
        self.cancellable = cancellable
        self.cancelled = False


class _ModelSim:
    """Reference semantics: a plain sorted scan, no heap, no lazy deletion.

    ``pending`` mirrors the engine's bookkeeping exactly, including the
    engine's (seed-inherited) quirk that cancelling an event which has
    already run still decrements the pending count: ``Simulator.cancel``
    only checks the ``cancelled`` flag, not whether the event is queued.
    """

    def __init__(self):
        self.now = 0
        self.seq = 0
        self.live = []
        self.trace = []
        self.pending = 0

    def add(self, time, key, chain, cancellable):
        event = _ModelEvent(time, self.seq, key, chain, cancellable)
        self.seq += 1
        self.live.append(event)
        self.pending += 1
        return event

    def cancel(self, event):
        if event is not None and event.cancellable and not event.cancelled:
            event.cancelled = True
            self.pending -= 1

    def run_until(self, target):
        while True:
            due = [e for e in self.live if not e.cancelled and e.time <= target]
            if not due:
                break
            event = min(due, key=lambda e: (e.time, e.seq))
            self.live.remove(event)
            self.now = event.time
            self.pending -= 1
            self.trace.append((event.key, event.time))
            if event.chain is not None:
                delay, cancel_index = event.chain
                if cancel_index is not None:
                    self.cancel(self.registry_get(cancel_index))
                if delay is not None:
                    self.add(self.now + delay, -event.key, None, False)
        self.live = [e for e in self.live if not e.cancelled]
        self.now = target

    def registry_get(self, index):
        raise NotImplementedError  # bound by the driver


# One scheduled task: (delay, chain) where chain optionally schedules a
# follow-up and/or cancels a previously created event when it fires.
_chain = st.one_of(
    st.none(),
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=40)),
        st.one_of(st.none(), st.integers(min_value=0, max_value=200)),
    ),
)

_op = st.one_of(
    st.tuples(st.just("schedule"), st.integers(min_value=0, max_value=100), _chain),
    st.tuples(st.just("post"), st.integers(min_value=0, max_value=100), _chain),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200), st.none()),
    st.tuples(st.just("run"), st.integers(min_value=0, max_value=60), st.none()),
)


def _run_real(ops):
    sim = Simulator()
    trace = []
    registry = []  # cancel handles, None for fire-and-forget posts

    def fire(key, chain):
        trace.append((key, sim.now))
        if chain is not None:
            delay, cancel_index = chain
            if cancel_index is not None and registry:
                sim.cancel(registry[cancel_index % len(registry)])
            if delay is not None:
                sim.post_at(sim.now + delay, fire, -key, None)

    for key, (kind, value, chain) in enumerate(ops):
        if kind == "schedule":
            registry.append(sim.schedule(value, fire, key, chain))
        elif kind == "post":
            sim.post_at(sim.now + value, fire, key, chain)
            registry.append(None)
        elif kind == "cancel":
            if registry:
                sim.cancel(registry[value % len(registry)])
        elif kind == "run":
            sim.run_until(sim.now + value)
    sim.run_until(sim.now + 500)
    return trace, sim.pending_events


def _run_model(ops):
    model = _ModelSim()
    registry = []
    model.registry_get = lambda i: registry[i % len(registry)] if registry else None

    for key, (kind, value, chain) in enumerate(ops):
        if kind == "schedule":
            registry.append(model.add(model.now + value, key, chain, True))
        elif kind == "post":
            model.add(model.now + value, key, chain, False)
            registry.append(None)
        elif kind == "cancel":
            if registry:
                model.cancel(registry[value % len(registry)])
        elif kind == "run":
            model.run_until(model.now + value)
    model.run_until(model.now + 500)
    return model.trace, model.pending


def test_compaction_fires_and_preserves_order():
    # Deterministic companion to the property tests: push the queue well
    # past the compaction threshold (64) with a majority of cancelled
    # entries, confirm _compact() actually ran, and that the survivors
    # still execute in exact (time, seq) order.
    sim = Simulator()
    ran = []
    events = [
        sim.schedule_at(1000 + i, lambda i=i: ran.append(i)) for i in range(300)
    ]
    for i in range(0, 300, 2):
        sim.cancel(events[i])
    for i in range(1, 300, 4):
        sim.cancel(events[i])
    assert len(sim._queue) < 300  # compaction dropped cancelled entries
    expected = [i for i in range(300) if i % 2 == 1 and i % 4 != 1]
    assert sim.pending_events == len(expected)
    sim.run_until(2000)
    assert ran == expected
    assert sim.pending_events == 0


class TestEngineMatchesReferenceModel:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_op, max_size=60))
    def test_traces_identical(self, ops):
        real_trace, real_pending = _run_real(ops)
        model_trace, model_pending = _run_model(ops)
        assert real_trace == model_trace
        assert real_pending == model_pending

    @settings(max_examples=25, deadline=None)
    @given(st.lists(_op, min_size=100, max_size=160))
    def test_traces_identical_under_compaction(self, ops):
        # Long cancel-heavy programs push the queue past the compaction
        # threshold; behavior must not change when _compact() kicks in.
        real_trace, real_pending = _run_real(ops)
        model_trace, model_pending = _run_model(ops)
        assert real_trace == model_trace
        assert real_pending == model_pending
