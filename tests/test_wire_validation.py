"""Grand wire-level validation: every PHY layer composed end to end.

MAC frames (CRC-32) and DTP messages are multiplexed into a Clause 49
block stream, scrambled, serialized to bits, pushed through a noisy
channel, block-locked, deserialized, descrambled and decoded.  The checks:

* clean channel: every frame FCS-verifies bit-exact, every DTP message
  arrives, the MAC-visible stream shows pristine idles;
* noisy channel: corrupted frames are *caught by the FCS* (never accepted
  silently), corrupted DTP counters would be caught by the ±8 filter, and
  the block-lock state machine rides through isolated header errors.
"""

import random


from repro.dtp.messages import DtpMessage, MessageType, encode
from repro.ethernet.mac import MacFrame, address
from repro.phy.block_sync import BlockSync, blocks_to_bitstream
from repro.phy.blocks import Block66, extract_bits_from_idle
from repro.phy.pcs_stream import PcsTransmitStream, receive_stream
from repro.phy.scrambler import Scrambler


def build_tx_stream(num_frames: int, rng: random.Random):
    """Frames + interleaved DTP beacons, as block list + expectations."""
    tx = PcsTransmitStream()
    frames = []
    messages = []
    for index in range(num_frames):
        message = encode(
            DtpMessage(MessageType.BEACON, rng.getrandbits(53))
        )
        tx.queue_dtp(message)
        messages.append(message)
        frame = MacFrame(
            destination=address("aa:bb:cc:dd:ee:ff"),
            source=address("02:00:00:00:00:01"),
            ethertype=0x88B5,
            payload=bytes(rng.getrandbits(8) for _ in range(rng.randint(46, 400))),
        )
        frames.append(frame)
        tx.send_frame(frame.wire_bytes())
        tx.send_idle(rng.randint(0, 3))
    return tx.blocks, frames, messages


def through_wire(blocks, flip_bits=(), scramble=True):
    """Scramble -> bit-serialize -> (flip) -> parse -> descramble."""
    tx_scrambler = Scrambler(state=12345)
    wire_blocks = []
    for block in blocks:
        payload = (
            tx_scrambler.scramble_word(block.payload) if scramble else block.payload
        )
        wire_blocks.append((block.sync << 64) | payload)
    bits = blocks_to_bitstream(wire_blocks)
    for position in flip_bits:
        bits[position] ^= 1
    # Receiver: block lock on headers, then reassemble blocks.
    sync = BlockSync()
    sync.push_stream([0b01] * 64)  # training: already locked links
    assert sync.locked
    rx_scrambler = Scrambler(state=12345)
    recovered = []
    for i in range(0, len(bits), 66):
        word = 0
        for bit in bits[i : i + 66]:
            word = (word << 1) | bit
        header = word >> 64
        sync.push_header(header)
        payload = word & ((1 << 64) - 1)
        payload = rx_scrambler.descramble_word(payload) if scramble else payload
        if header in (0b01, 0b10):
            recovered.append(Block66(sync=header, payload=payload))
    return recovered, sync


class TestCleanChannel:
    def test_everything_roundtrips(self):
        rng = random.Random(1)
        blocks, frames, messages = build_tx_stream(10, rng)
        recovered, sync = through_wire(blocks)
        assert sync.locked
        rx_frames, rx_messages, mac_view = receive_stream(recovered)
        assert rx_messages == messages
        assert len(rx_frames) == len(frames)
        for wire, original in zip(rx_frames, frames):
            parsed = MacFrame.parse_wire(
                wire, original_payload_len=len(original.payload)
            )
            assert parsed == original  # FCS verified, bit-exact
        for block in mac_view:
            if block.is_idle:
                assert extract_bits_from_idle(block) == 0

    def test_without_scrambler_also_roundtrips(self):
        rng = random.Random(2)
        blocks, frames, messages = build_tx_stream(4, rng)
        recovered, _ = through_wire(blocks, scramble=False)
        rx_frames, rx_messages, _ = receive_stream(recovered)
        assert rx_messages == messages
        assert len(rx_frames) == len(frames)


class TestNoisyChannel:
    def test_frame_corruption_caught_by_fcs(self):
        rng = random.Random(3)
        blocks, frames, messages = build_tx_stream(3, rng)
        # Flip one payload bit inside the second block (a frame data bit;
        # block 0 is the first frame's START block).
        flip = 1 * 66 + 30
        recovered, _ = through_wire(blocks, flip_bits=(flip,))
        rx_frames, _, _ = receive_stream(recovered)
        corrupted = 0
        for wire, original in zip(rx_frames, frames):
            try:
                parsed = MacFrame.parse_wire(
                    wire, original_payload_len=len(original.payload)
                )
                assert parsed == original
            except Exception:
                corrupted += 1
        assert corrupted == 1  # caught, not silently accepted

    def test_scrambler_error_multiplication_still_caught(self):
        """A single wire flip hits the descrambler taps and multiplies to
        up to three payload errors — all inside one frame, all caught."""
        rng = random.Random(4)
        blocks, frames, _ = build_tx_stream(2, rng)
        flip = 2 * 66 + 10
        recovered, _ = through_wire(blocks, flip_bits=(flip,))
        rx_frames, _, _ = receive_stream(recovered)
        failures = 0
        for wire, original in zip(rx_frames, frames):
            try:
                MacFrame.parse_wire(wire, original_payload_len=len(original.payload))
            except Exception:
                failures += 1
        assert failures >= 1

    def test_header_corruption_detected_by_block_sync(self):
        rng = random.Random(5)
        blocks, _, _ = build_tx_stream(2, rng)
        # Flip a sync-header bit: that block's header becomes invalid.
        recovered, sync = through_wire(blocks, flip_bits=(0,))
        assert sync.locked  # one bad header does not drop the link
        # But the block itself vanished from the recovered stream.
        assert len(recovered) == len(blocks) - 1

    def test_many_header_errors_raise_hi_ber_then_relock(self):
        rng = random.Random(6)
        blocks, _, _ = build_tx_stream(6, rng)
        flips = tuple(i * 66 for i in range(20))  # 20 broken headers
        _, sync = through_wire(blocks, flip_bits=flips)
        assert sync.hi_ber_events >= 1  # the burst dropped the lock...
        assert sync.locked  # ...and the clean tail re-acquired it
