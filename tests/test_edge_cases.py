"""Edge-case battery across subsystems: the paths happy tests miss."""

import pytest

from repro.clocks.oscillator import ConstantSkew, Oscillator
from repro.dtp import messages as dtpmsg
from repro.dtp.device import DtpDevice
from repro.dtp.external import UtcBroadcast, UtcSlave
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPort, PortState
from repro.ethernet.frames import MTU_FRAME
from repro.ethernet.traffic import SaturatedTraffic
from repro.network.topology import chain, star
from repro.phy.pipeline import advance_ticks
from repro.sim import units

TICK = units.TICK_10G_FS


class TestPortEdgeCases:
    def make_pair(self, sim, streams):
        dev_a = DtpDevice(sim, "a", Oscillator(TICK, ConstantSkew(10.0)), streams.fork("a"))
        dev_b = DtpDevice(sim, "b", Oscillator(TICK, ConstantSkew(-10.0)), streams.fork("b"))
        port_a = DtpPort(dev_a, "a->b")
        port_b = DtpPort(dev_b, "b->a")
        port_a.connect(port_b, 8 * TICK, 8 * TICK)
        return port_a, port_b

    def test_duplicate_init_ack_ignored(self, sim, streams):
        a, b = self.make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(100 * units.US)
        assert a.state is PortState.SYNCHRONIZED
        d_before = a.d
        # Replay an old INIT_ACK: must not re-measure.
        bits = dtpmsg.encode(
            dtpmsg.DtpMessage(dtpmsg.MessageType.INIT_ACK, 12345)
        )
        a._process(bits)
        assert a.d == d_before

    def test_beacon_before_init_ignored(self, sim, streams):
        a, b = self.make_pair(sim, streams)
        a.link_up()  # INIT state; d is None
        bits = dtpmsg.encode(dtpmsg.DtpMessage(dtpmsg.MessageType.BEACON, 500))
        a._process(bits)  # must not crash nor adjust
        assert a.stats.jumps == 0

    def test_join_before_init_ignored(self, sim, streams):
        a, b = self.make_pair(sim, streams)
        a.link_up()
        bits = dtpmsg.encode(
            dtpmsg.DtpMessage(dtpmsg.MessageType.BEACON_JOIN, 999_999)
        )
        before = a.lc.counter_at(sim.now)
        a._process(bits)
        assert a.lc.counter_at(sim.now) - before <= 1

    def test_message_to_down_port_dropped(self, sim, streams):
        a, b = self.make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(100 * units.US)
        b.link_down()
        count = b.stats.received.get("BEACON", 0)
        sim.run_until(300 * units.US)
        assert b.stats.received.get("BEACON", 0) == count

    def test_relink_measures_fresh_owd(self, sim, streams):
        a, b = self.make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(100 * units.US)
        a.link_down()
        b.link_down()
        assert a.d is None
        sim.run_until(200 * units.US)
        a.link_up()
        b.link_up()
        sim.run_until(500 * units.US)
        assert a.d is not None
        assert a.state is PortState.SYNCHRONIZED

    def test_log_without_callback_is_harmless(self, sim, streams):
        a, b = self.make_pair(sim, streams)
        a.link_up()
        b.link_up()
        sim.run_until(100 * units.US)
        a.send_log()  # b has no on_log registered
        sim.run_until(200 * units.US)
        assert b.stats.received.get("LOG", 0) == 1


class TestTrafficInterplay:
    def test_install_traffic_then_log(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        net.install_traffic(
            lambda i, d: SaturatedTraffic(MTU_FRAME, phase=i), start_tick=10_000
        )
        net.attach_logger("n0", "n1")
        sim.run_until(units.MS)
        for _ in range(30):
            net.send_log("n0", "n1")
            sim.run_until(sim.now + 20 * units.US)
        samples = net.logged_for("n0", "n1")
        assert len(samples) == 30
        assert all(abs(s.offset_ticks) <= 4 for s in samples)

    def test_logged_for_unknown_pair_empty(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        assert net.logged_for("n1", "n0") == []


class TestUtcSlaveEdges:
    def test_history_capped(self):
        class FakeDaemon:
            class device:
                class oscillator:
                    nominal_period_fs = TICK

                counter_increment = 1

        slave = UtcSlave(FakeDaemon(), history=3)
        for i in range(10):
            slave.on_broadcast(UtcBroadcast(counter=i * 1000, utc_fs=i * units.MS))
        assert len(slave.pairs) == 3

    def test_zero_counter_delta_keeps_previous_ratio(self):
        class FakeDaemon:
            class device:
                class oscillator:
                    nominal_period_fs = TICK

                counter_increment = 1

        slave = UtcSlave(FakeDaemon(), history=4)
        before = slave._fs_per_count
        slave.on_broadcast(UtcBroadcast(counter=100, utc_fs=0))
        slave.on_broadcast(UtcBroadcast(counter=100, utc_fs=units.MS))
        assert slave._fs_per_count == before


class TestPipelineEdges:
    def test_advance_zero_ticks_is_identity_at_origin(self):
        osc = Oscillator(TICK, ConstantSkew(0.0))
        assert advance_ticks(osc, 0, 0) == 0

    def test_advance_from_mid_tick(self):
        osc = Oscillator(TICK, ConstantSkew(0.0))
        t = advance_ticks(osc, TICK + 5, 2)
        assert osc.ticks_at(t) == 3


class TestNetworkApiEdges:
    def test_max_abs_offset_with_empty_nodes(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        assert net.max_abs_offset(nodes=[]) == 0

    def test_counter_of_defaults_to_now(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        sim.run_until(units.MS)
        assert net.counter_of("n0") == net.counter_of("n0", sim.now)

    def test_down_unknown_link_raises(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        with pytest.raises(KeyError):
            net.down_link("n0", "ghost")

    def test_start_twice_is_harmless(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        net.start()  # extra link_up on live ports re-runs INIT
        sim.run_until(2 * units.MS)
        assert net.all_synchronized()
        assert net.max_abs_offset() <= 8


class TestPtpEdges:
    def test_follow_up_with_wrong_seq_ignored(self, sim, streams):
        from repro.clocks.clock import AdjustableFrequencyClock
        from repro.network.packet import PacketNetwork
        from repro.phy.specs import PHY_10G
        from repro.ptp.slave import PtpSlave

        net = PacketNetwork(sim, star(2))
        clock = AdjustableFrequencyClock(
            Oscillator(PHY_10G.period_fs, ConstantSkew(0.0))
        )
        slave = PtpSlave(
            sim, net, "h0", "h1", clock, streams.stream("s"),
        )
        # Sync seq 5 arrives...
        from repro.network.packet import Packet

        sync = Packet(src="h1", dst="h0", size_bytes=86, kind="ptp_sync",
                      payload={"seq": 5})
        slave._on_sync(sync, 0, 100)
        follow = Packet(src="h1", dst="h0", size_bytes=86, kind="ptp_followup",
                        payload={"seq": 9, "t1_fs": 0.0})
        slave._on_follow_up(follow, 0, 100)  # wrong seq: no delay_req
        sim.run()
        assert slave.exchanges_completed == 0

    def test_disabled_slave_ignores_sync(self, sim, streams):
        from repro.clocks.clock import AdjustableFrequencyClock
        from repro.network.packet import Packet, PacketNetwork
        from repro.phy.specs import PHY_10G
        from repro.ptp.slave import PtpSlave

        net = PacketNetwork(sim, star(2))
        clock = AdjustableFrequencyClock(
            Oscillator(PHY_10G.period_fs, ConstantSkew(0.0))
        )
        slave = PtpSlave(sim, net, "h0", "h1", clock, streams.stream("s"))
        slave.enabled = False
        sync = Packet(src="h1", dst="h0", size_bytes=86, kind="ptp_sync",
                      payload={"seq": 1})
        slave._on_sync(sync, 0, 100)
        assert slave.syncs_seen == 0
