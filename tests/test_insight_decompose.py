"""Bound decomposition: 2-tick OWD-error + 2-tick drift on every scenario.

The acceptance matrix of this subsystem: over each built-in scenario's
fault-free interval, every link direction's trace-measured OWD error and
drift component must sit within the Section 3.3 budgets (2 ticks each)
and agree with the ``dtp/analysis.py`` closed forms.
"""

import math

import pytest

from repro.dtp.analysis import OwdErrorAnalysis, drift_ticks_over
from repro.experiments.parallel import derive_seed
from repro.faultlab import builtin_specs, run_scenario
from repro.insight import (
    DRIFT_BUDGET_TICKS,
    OWD_ERROR_BUDGET_TICKS,
    decompose_links,
    fault_free_end_fs,
    scorecard_rows,
)
from repro.insight.decompose import _spec_ppm_gap
from repro.sim import units
from repro.telemetry import Telemetry, TraceIndex

SCENARIOS = [spec["name"] for spec in builtin_specs(quick=True)]


def _decomposed(name, base_seed=0):
    [spec] = builtin_specs([name], quick=True)
    telemetry = Telemetry()
    run_scenario(spec, seed=derive_seed(base_seed, name), telemetry=telemetry)
    index = TraceIndex.from_recorder(telemetry.tracer)
    return spec, decompose_links(index, spec=spec)


def test_fault_free_end_fs():
    assert fault_free_end_fs({"faults": []}) is None
    assert fault_free_end_fs({"faults": [{"at_fs": 5}]}) == 5
    assert fault_free_end_fs(
        {"faults": [{"start_fs": 9}, {"down_at_fs": 4}]}
    ) == 4


@pytest.mark.parametrize("name", SCENARIOS)
def test_builtin_scenario_within_component_budgets(name):
    spec, scorecards = _decomposed(name)
    assert scorecards, f"{name}: no links decomposed"
    ppm_gap = _spec_ppm_gap(spec)
    checked = 0
    for card in scorecards:
        for direction in card.directions:
            if not direction.complete:
                continue
            checked += 1
            # The two 2-tick components of the 4-tick direct bound.
            assert direction.owd_error_ticks <= OWD_ERROR_BUDGET_TICKS, (
                f"{name} {direction.tx_port}: owd error "
                f"{direction.owd_error_ticks} ticks"
            )
            assert direction.drift_ticks <= DRIFT_BUDGET_TICKS, (
                f"{name} {direction.tx_port}: drift {direction.drift_ticks} ticks"
            )
            # Closed-form cross-checks (dtp/analysis.py).
            analysis = OwdErrorAnalysis(alpha=direction.alpha_ticks)
            assert direction.owd_error_bound_ticks == -analysis.measured_min_minus_d
            assert direction.owd_within_closed_form
            # Observed drift never exceeds the analytical reclaim per
            # interval by more than tick quantization.
            cf = direction.drift_closed_form_ticks
            if cf:
                gap_ticks = round(cf / (ppm_gap * 1e-6))
                assert cf == drift_ticks_over(gap_ticks, ppm_gap)
                assert direction.drift_ticks <= math.ceil(cf) + 1
    assert checked > 0, f"{name}: no complete direction to check"


def test_fault_window_excluded_from_decomposition():
    # link-flap's faults start at 300us; the window must end there, so the
    # decomposition never sees flap-era beacon gaps.
    spec, scorecards = _decomposed("link-flap")
    end_fs = fault_free_end_fs(spec)
    assert end_fs == 300 * units.US
    for card in scorecards:
        for direction in card.directions:
            if direction.complete:
                # closed form uses fault-free-window gaps only: a flap gap
                # (hundreds of intervals) would push this over 2 ticks.
                assert direction.drift_closed_form_ticks < 2.0


def test_scorecard_rows_render():
    _spec, scorecards = _decomposed("baseline")
    rows = scorecard_rows(scorecards)
    assert rows[0].startswith("| link | direction |")
    body = rows[2:]
    assert len(body) == sum(len(card.directions) for card in scorecards)
    assert all("ok" in row or "incomplete" in row for row in body)
    assert not any("EXCEEDED" in row for row in body)


def test_reconstructed_offset_context():
    _spec, scorecards = _decomposed("baseline")
    for card in scorecards:
        assert card.max_reconstructed_offset_ticks is not None
        # 4-tick direct bound + 2 ticks anchor quantization.
        assert card.max_reconstructed_offset_ticks <= 6
