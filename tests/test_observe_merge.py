"""Mergeable-histogram laws and the cross-backend distribution contract.

The SLO engine's quantiles only deserve trust if the underlying
histograms merge like counters: associative, commutative, and
order-independent, so the sharded backend's per-shard partials can fold
together in any grouping and still equal the serial bytes.  Hypothesis
pins the algebra; the builtin sweep pins the end-to-end promise — the
``observe`` section of every builtin scenario's result is byte-identical
between the scalar and sharded backends.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faultlab.campaign import run_scenario
from repro.faultlab.scenarios import BUILTIN_SCENARIOS, builtin_specs
from repro.observe import OffsetHistogram

#: Offsets in counter units: zero, in-band values, and overflow monsters.
offsets = st.integers(min_value=0, max_value=1 << 26)
offset_lists = st.lists(offsets, max_size=200)


def filled(values) -> OffsetHistogram:
    hist = OffsetHistogram()
    for value in values:
        hist.observe(value)
    return hist


def canon(hist: OffsetHistogram) -> str:
    return json.dumps(hist.as_dict(), sort_keys=True)


class TestMergeAlgebra:
    @given(offset_lists, offset_lists)
    def test_merge_equals_observing_concatenation(self, xs, ys):
        merged = filled(xs)
        merged.merge(filled(ys))
        assert canon(merged) == canon(filled(xs + ys))

    @given(offset_lists, offset_lists)
    def test_merge_commutes(self, xs, ys):
        ab = filled(xs)
        ab.merge(filled(ys))
        ba = filled(ys)
        ba.merge(filled(xs))
        assert canon(ab) == canon(ba)

    @given(offset_lists, offset_lists, offset_lists)
    def test_merge_associates(self, xs, ys, zs):
        left = filled(xs)
        left.merge(filled(ys))
        left.merge(filled(zs))
        inner = filled(ys)
        inner.merge(filled(zs))
        right = filled(xs)
        right.merge(inner)
        assert canon(left) == canon(right)

    @given(st.lists(offset_lists, max_size=6), st.randoms())
    def test_merged_is_order_independent(self, parts, rng):
        forward = OffsetHistogram.merged([filled(p) for p in parts])
        shuffled = list(parts)
        rng.shuffle(shuffled)
        backward = OffsetHistogram.merged([filled(p) for p in shuffled])
        assert canon(forward) == canon(backward)

    @given(offset_lists)
    def test_dict_round_trip(self, xs):
        hist = filled(xs)
        assert canon(OffsetHistogram.from_dict(hist.as_dict())) == canon(hist)


class TestQuantiles:
    @given(offset_lists.filter(bool))
    def test_quantiles_monotone_and_bounded(self, xs):
        hist = filled(xs)
        qs = [hist.quantile_ppm(q) for q in (0, 250_000, 500_000,
                                             900_000, 990_000, 1_000_000)]
        assert qs == sorted(qs)
        assert qs[-1] == max(xs)  # q=1.0 is the exact maximum

    @given(offset_lists.filter(bool))
    def test_quantile_upper_bounds_true_rank(self, xs):
        # A bucket-upper estimate never under-reports: at least q of the
        # mass really is <= the reported value.
        hist = filled(xs)
        for q_ppm in (500_000, 900_000, 990_000):
            estimate = hist.quantile_ppm(q_ppm)
            at_or_below = sum(1 for x in xs if x <= estimate)
            assert at_or_below * 1_000_000 >= q_ppm * len(xs)

    def test_empty_histogram(self):
        hist = OffsetHistogram()
        assert hist.quantile_ppm(990_000) == 0
        assert hist.as_dict()["total"] == 0


# ----------------------------------------------------------------------
# The end-to-end promise the algebra exists for
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", list(BUILTIN_SCENARIOS))
def test_observe_identical_serial_vs_sharded(name):
    spec = builtin_specs([name], quick=True)[0]
    serial = run_scenario(dict(spec), seed=0, observe=True)
    sharded = run_scenario(
        dict(spec),
        seed=0,
        observe=True,
        backend="sharded",
        shards=2,
        shard_transport="inline",
    )
    assert "observe" in serial
    canon_s = json.dumps(serial, sort_keys=True)
    canon_p = json.dumps(sharded, sort_keys=True)
    assert canon_s == canon_p
