"""Exporters, flight recorder, trace CLI, and cross-process determinism."""

import json

import pytest

from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.experiments.fig6_dtp import run_fig6a_traced_digests
from repro.experiments.parallel import ExperimentTask, run_tasks
from repro.faultlab.campaign import run_scenario
from repro.faultlab.scenarios import builtin_specs
from repro.network.topology import star
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.telemetry import Telemetry, load_flight
from repro.telemetry.export import (
    chrome_trace_events,
    file_sha256,
    read_trace_jsonl,
    summarize_records,
    trace_digest,
    write_chrome_trace,
    write_metrics_json,
    write_trace_jsonl,
)


@pytest.fixture(scope="module")
def traced_run():
    telemetry = Telemetry()
    sim = Simulator()
    net = DtpNetwork(
        sim,
        star(2),
        RandomStreams(5),
        config=DtpPortConfig(beacon_interval_ticks=200),
        telemetry=telemetry,
    )
    net.start()
    sim.run_until(300 * units.US)
    return telemetry


class TestJsonl:
    def test_roundtrip(self, traced_run, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        write_trace_jsonl(str(path), traced_run.tracer)
        header, records = read_trace_jsonl(str(path))
        assert header["record"] == "trace-header"
        assert header["version"] == 1
        assert header["subjects"] == traced_run.tracer.subjects
        assert header["recorded"] == traced_run.tracer.recorded
        assert records == list(traced_run.tracer.records)

    def test_digest_matches_file_bytes(self, traced_run, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        write_trace_jsonl(str(path), traced_run.tracer)
        assert trace_digest(traced_run.tracer) == file_sha256(str(path))
        assert traced_run.trace_digest() == file_sha256(str(path))

    def test_summarize(self, traced_run, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        write_trace_jsonl(str(path), traced_run.tracer)
        lines = summarize_records(*read_trace_jsonl(str(path)))
        assert any(line.startswith("records:") for line in lines)
        assert any("tx" in line for line in lines)


class TestChromeTrace:
    def test_event_schema(self, traced_run):
        tracer = traced_run.tracer
        events = chrome_trace_events(tracer.records, tracer.subjects)
        # Metadata: one process_name plus one thread_name per subject.
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        assert len(meta) == 1 + len(tracer.subjects)
        instants = [e for e in events if e["ph"] != "M"]
        assert len(instants) == len(tracer.records)
        for event in instants:
            assert set(event) >= {"name", "ph", "ts", "pid", "tid"}
            assert event["ph"] == "i"
            assert event["tid"] < len(tracer.subjects)
        # ts is microseconds of the femtosecond sim time.
        first = instants[0]
        assert first["ts"] == first["args"]["time_fs"] / 1e9

    def test_written_file_is_valid_json(self, traced_run, tmp_path):
        tracer = traced_run.tracer
        path = tmp_path / "run.chrome.json"
        write_chrome_trace(str(path), tracer.records, tracer.subjects)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert "traceEvents" in document
        assert len(document["traceEvents"]) == len(tracer.records) + 1 + len(
            tracer.subjects
        )


class TestMetricsArtifact:
    def test_digest_stable_and_wallclock_free(self, traced_run, tmp_path):
        path = tmp_path / "run.metrics.json"
        write_metrics_json(str(path), traced_run)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["digest"] == traced_run.metrics_digest()
        assert "wallclock" not in document
        assert "dtp_messages_sent_total" in document["metrics"]


def _two_faced_spec():
    (spec,) = builtin_specs(["two-faced"], quick=True)
    return spec


class TestFlight:
    def test_violating_scenario_dumps_flight(self, tmp_path):
        result = run_scenario(
            _two_faced_spec(), seed=0, flight_dir=str(tmp_path)
        )
        assert result["violations_total"] > 0
        path = tmp_path / "two-faced.flight.jsonl"
        assert path.exists()
        dump = load_flight(str(path))
        assert dump.header["scenario"] == "two-faced"
        assert dump.header["seed"] == 0
        assert dump.header["trace_tail"] == len(dump.records)
        assert dump.header["metrics_digest"] == result["telemetry"]["metrics_digest"]
        assert dump.context["violation"]["invariant"]
        assert "dtp_messages_sent_total" in dump.metrics

    def test_flight_roundtrip_is_byte_identical(self, tmp_path):
        run_scenario(_two_faced_spec(), seed=0, flight_dir=str(tmp_path))
        path = tmp_path / "two-faced.flight.jsonl"
        with open(path, "rb") as handle:
            raw = handle.read()
        assert load_flight(str(path)).dump_bytes() == raw

    def test_same_seed_flights_are_byte_identical(self, tmp_path):
        dir_a = tmp_path / "a"
        dir_b = tmp_path / "b"
        run_scenario(_two_faced_spec(), seed=0, flight_dir=str(dir_a))
        run_scenario(_two_faced_spec(), seed=0, flight_dir=str(dir_b))
        assert file_sha256(str(dir_a / "two-faced.flight.jsonl")) == file_sha256(
            str(dir_b / "two-faced.flight.jsonl")
        )


class TestTraceCli:
    def test_record_twice_is_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        out_a = tmp_path / "a"
        out_b = tmp_path / "b"
        for out in (out_a, out_b):
            code = main(
                ["trace", "record", "two-faced", "--quick", "-o", str(out),
                 "--chrome"]
            )
            assert code == 0
        capsys.readouterr()
        for artifact in (
            "two-faced.trace.jsonl",
            "two-faced.metrics.json",
            "two-faced.chrome.json",
        ):
            assert file_sha256(str(out_a / artifact)) == file_sha256(
                str(out_b / artifact)
            )

    def test_summarize_and_export(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "out"
        assert main(["trace", "record", "two-faced", "--quick", "-o", str(out)]) == 0
        capsys.readouterr()

        trace_file = str(out / "two-faced.trace.jsonl")
        assert main(["trace", "summarize", trace_file]) == 0
        summary = capsys.readouterr().out
        assert "records:" in summary
        assert "by kind:" in summary

        chrome_out = str(tmp_path / "exported.chrome.json")
        assert main(["trace", "export", trace_file, "-o", chrome_out]) == 0
        capsys.readouterr()
        with open(chrome_out, "r", encoding="utf-8") as handle:
            assert "traceEvents" in json.load(handle)

    def test_record_rejects_unknown_scenario(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["trace", "record", "no-such", "-o", str(tmp_path)])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestFaultlabCliArtifacts:
    def test_dump_trace_writes_flight_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "artifacts"
        code = main(
            [
                "faultlab", "--quick", "two-faced", "baseline",
                "--trace", str(out), "--metrics-out", str(out),
                "--dump-trace", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        # Every scenario gets trace + metrics + prom; only violating ones
        # get a flight artifact.
        for scenario in ("two-faced", "baseline"):
            assert (out / f"{scenario}.trace.jsonl").exists()
            assert (out / f"{scenario}.metrics.json").exists()
            assert (out / f"{scenario}.prom").exists()
        assert (out / "two-faced.flight.jsonl").exists()
        assert not (out / "baseline.flight.jsonl").exists()
        flight = load_flight(str(out / "two-faced.flight.jsonl"))
        with open(out / "two-faced.flight.jsonl", "rb") as handle:
            assert flight.dump_bytes() == handle.read()


class TestCrossProcessDeterminism:
    def test_fig6a_serial_and_parallel_digests_agree(self):
        serial_a = run_fig6a_traced_digests()
        serial_b = run_fig6a_traced_digests()
        assert serial_a == serial_b
        assert serial_a["trace_recorded"] > 0

        tasks = [
            ExperimentTask(name=f"fig6a-{i}", fn=run_fig6a_traced_digests)
            for i in range(2)
        ]
        for parallel_result in run_tasks(tasks, jobs=2):
            assert parallel_result == serial_a
