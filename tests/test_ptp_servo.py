"""Unit tests for the PTP servo and delay filter."""

import pytest

from repro.ptp.servo import DelayFilter, PiServo
from repro.sim import units


class TestDelayFilter:
    def test_single_sample_passthrough(self):
        f = DelayFilter(window=4)
        assert f.update(100.0) == 100.0

    def test_minimum_wins(self):
        f = DelayFilter(window=4)
        f.update(100.0)
        f.update(50.0)
        assert f.update(200.0) == 50.0

    def test_window_expires_old_minimum(self):
        f = DelayFilter(window=2)
        f.update(10.0)
        f.update(100.0)
        assert f.update(100.0) == 100.0

    def test_current_none_before_samples(self):
        assert DelayFilter().current is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            DelayFilter(window=0)

    def test_queueing_spike_rejected(self):
        """The reason for the filter: spikes only add delay, never remove."""
        f = DelayFilter(window=8)
        base = 300.0
        for _ in range(4):
            f.update(base)
        assert f.update(base + 50_000.0) == base


class TestPiServo:
    def test_first_big_offset_steps(self):
        servo = PiServo()
        action = servo.sample(50 * units.US, units.SEC)
        assert action.kind == "step"
        assert action.value == -50 * units.US

    def test_subsequent_big_offsets_slew(self):
        """Real servos stop stepping after lock — chasing noise with phase
        steps is the failure mode (and was a bug in this code once)."""
        servo = PiServo()
        servo.sample(50 * units.US, units.SEC)
        action = servo.sample(40 * units.US, units.SEC)
        assert action.kind == "slew"

    def test_panic_threshold_steps_again(self):
        servo = PiServo(panic_threshold_fs=units.MS)
        servo.sample(50 * units.US, units.SEC)
        action = servo.sample(5 * units.MS, units.SEC)
        assert action.kind == "step"

    def test_small_first_offset_slews(self):
        servo = PiServo()
        action = servo.sample(units.US, units.SEC)
        assert action.kind == "slew"

    def test_slew_opposes_offset(self):
        servo = PiServo()
        action = servo.sample(units.US, units.SEC)  # we are ahead
        assert action.value < 0  # slow down

    def test_freq_adj_clamped(self):
        servo = PiServo(max_freq_adj=100e-6, panic_threshold_fs=units.SEC)
        servo.sample(1.0, units.SEC)  # consume the first-step allowance
        action = servo.sample(5 * units.MS, units.SEC)
        assert action.kind == "slew"
        assert abs(action.value) <= 100e-6

    def test_integral_accumulates(self):
        servo = PiServo()
        first = servo.sample(units.US, units.SEC)
        second = servo.sample(units.US, units.SEC)
        # Same offset twice: integral term grows the correction.
        assert abs(second.value) > abs(first.value)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            PiServo().sample(0.0, 0)

    def test_closed_loop_converges_on_constant_skew(self):
        """Simulate the plant: offset' = (skew + adj) * dt."""
        servo = PiServo()
        skew = 20e-6  # 20 ppm
        offset = 0.0
        dt = units.SEC
        adj = 0.0
        history = []
        for _ in range(60):
            offset += (skew + adj) * dt
            action = servo.sample(offset, dt)
            if action.kind == "step":
                offset += action.value
            else:
                adj = action.value
            history.append(abs(offset))
        assert history[-1] < 0.05 * max(history)
        assert adj == pytest.approx(-skew, rel=0.2)
