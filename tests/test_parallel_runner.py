"""Tests for the parallel experiment harness (experiments/parallel.py)."""

import pytest

from repro.experiments.parallel import (
    ExperimentTask,
    derive_seed,
    replicate_seeds,
    run_named_tasks,
    run_tasks,
)
from repro.experiments.sweeps import sweep_ber


def _square(x, offset=0):
    return x * x + offset


def _seeded_sum(seed, n):
    # A deterministic stand-in for "run an experiment with this seed".
    return sum((seed * (i + 1)) % 997 for i in range(n))


class TestDeriveSeed:
    def test_stable_and_order_independent(self):
        a = derive_seed(7, "sweep/ber=1e-9")
        assert a == derive_seed(7, "sweep/ber=1e-9")
        assert a != derive_seed(7, "sweep/ber=1e-8")
        assert a != derive_seed(8, "sweep/ber=1e-9")

    def test_fits_in_63_bits(self):
        for name in ("a", "b", "c", "long/task/name=42"):
            assert 0 <= derive_seed(123, name) < (1 << 63)

    def test_replicate_seeds_keys(self):
        seeds = replicate_seeds(5, ["r0", "r1", "r2"])
        assert set(seeds) == {"r0", "r1", "r2"}
        assert len(set(seeds.values())) == 3


class TestRunTasks:
    def _tasks(self):
        return [
            ExperimentTask(f"t{i}", _square, (i,), {"offset": i % 3})
            for i in range(8)
        ]

    def test_serial_results_in_task_order(self):
        results = run_tasks(self._tasks(), jobs=1)
        assert results == [i * i + i % 3 for i in range(8)]

    def test_parallel_matches_serial(self):
        serial = run_tasks(self._tasks(), jobs=1)
        parallel = run_tasks(self._tasks(), jobs=2)
        assert parallel == serial

    def test_jobs_none_runs_all_tasks(self):
        assert len(run_tasks(self._tasks())) == 8

    def test_named_tasks_keyed_by_name(self):
        out = run_named_tasks(
            [ExperimentTask("a", _seeded_sum, (1, 10)),
             ExperimentTask("b", _seeded_sum, (2, 10))],
            jobs=2,
        )
        assert out == {"a": _seeded_sum(1, 10), "b": _seeded_sum(2, 10)}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_named_tasks(
                [ExperimentTask("a", _square, (1,)),
                 ExperimentTask("a", _square, (2,))]
            )


class TestSweepParallelEquivalence:
    def test_ber_sweep_identical_serial_vs_parallel(self):
        # A real experiment sweep through worker processes must reproduce
        # the serial run exactly (same cells, same worst offsets).
        kwargs = dict(
            bers=(0.0, 1e-9),
            duration_fs=200_000_000_000,  # 0.2 ms keeps this test quick
            seed=3,
        )
        serial = sweep_ber(jobs=1, **kwargs)
        parallel = sweep_ber(jobs=2, **kwargs)
        assert serial == parallel
