"""Tests for DTP-assisted external synchronization (paper Section 5.2)."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.clocks.tsc import TscCounter
from repro.dtp.daemon import DtpDaemon
from repro.dtp.hybrid import HybridTimeMaster, HybridTimeSlave
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.experiments.hybrid_sync import run_hybrid_comparison
from repro.network.packet import PacketNetwork
from repro.network.topology import star
from repro.network.virtualload import heavy_backlog
from repro.sim import units


@pytest.fixture
def hybrid_setup(sim, streams):
    topology = star(3)
    dtp = DtpNetwork(
        sim, topology, streams,
        config=DtpPortConfig(beacon_interval_ticks=1200),
    )
    dtp.start()
    packets = PacketNetwork(sim, topology)
    sim.run_until(2 * units.MS)
    daemons = {}
    for i, name in enumerate(("h0", "h1")):
        tsc = TscCounter(skew=ConstantSkew(2.0 * i - 3.0), name=f"tsc/{name}")
        daemons[name] = DtpDaemon(
            sim, dtp.devices[name], tsc, streams.stream(f"d/{name}"),
            sample_interval_fs=units.MS, smoothing_window=4,
        )
        daemons[name].start()
    sim.run_until(8 * units.MS)
    return dtp, packets, daemons


def test_hybrid_sync_idle_network(sim, streams, hybrid_setup):
    dtp, packets, daemons = hybrid_setup
    master = HybridTimeMaster(
        sim, packets, "h0", daemons["h0"], slaves=["h1"],
        sync_interval_fs=5 * units.MS,
    )
    slave = HybridTimeSlave(sim, packets, "h1", daemons["h1"])
    master.start()
    sim.run_until(sim.now + 50 * units.MS)
    error = slave.utc_error_fs(sim.now)
    assert error is not None
    assert abs(error) < 300 * units.NS
    assert len(slave.samples) >= 8


def test_hybrid_sync_survives_heavy_load(sim, streams, hybrid_setup):
    """The whole point: per-packet measured OWD makes load irrelevant."""
    dtp, packets, daemons = hybrid_setup
    index = 0
    for node in packets.nodes.values():
        for iface in node.interfaces.values():
            iface.virtual_load = heavy_backlog(streams.stream(f"l/{index}"))
            index += 1
    master = HybridTimeMaster(
        sim, packets, "h0", daemons["h0"], slaves=["h1"],
        sync_interval_fs=5 * units.MS,
    )
    slave = HybridTimeSlave(sim, packets, "h1", daemons["h1"])
    master.start()
    sim.run_until(sim.now + 60 * units.MS)
    error = slave.utc_error_fs(sim.now)
    assert error is not None
    assert abs(error) < 300 * units.NS  # ns-scale despite ~hundreds-of-us queues
    # The measured per-packet OWDs really did see the congestion:
    owds = [s.owd_counter_units for s in slave.samples]
    assert max(owds) > 1000  # hundreds of microseconds of queueing, in ticks


def test_slave_none_before_first_sync(sim, streams, hybrid_setup):
    _, packets, daemons = hybrid_setup
    slave = HybridTimeSlave(sim, packets, "h1", daemons["h1"])
    assert slave.get_utc(sim.now) is None
    assert slave.utc_error_fs(sim.now) is None


def test_master_utc_bias_propagates(sim, streams, hybrid_setup):
    _, packets, daemons = hybrid_setup
    bias = 2 * units.US
    master = HybridTimeMaster(
        sim, packets, "h0", daemons["h0"], slaves=["h1"],
        utc_error_fs=bias, sync_interval_fs=5 * units.MS,
    )
    slave = HybridTimeSlave(sim, packets, "h1", daemons["h1"])
    master.start()
    sim.run_until(sim.now + 40 * units.MS)
    assert slave.utc_error_fs(sim.now) == pytest.approx(bias, abs=units.US / 2)


def test_comparison_experiment():
    result = run_hybrid_comparison(
        ptp_duration_fs=120 * units.SEC, hybrid_duration_fs=60 * units.MS
    )
    assert result.summary["hybrid_immune_to_load"]
    assert result.summary["improvement_factor"] > 10
