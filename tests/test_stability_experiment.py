"""Smoke test for the MTIE/ADEV stability comparison."""

from repro.experiments.stability import (
    dtp_offset_series,
    ptp_offset_series,
    run_stability_comparison,
)
from repro.sim import units


def test_dtp_series_bounded():
    series = dtp_offset_series(duration_fs=4 * units.MS)
    assert len(series) > 100
    assert series.max_abs() <= 4 * units.TICK_10G_FS


def test_ptp_series_has_noise():
    series = ptp_offset_series(load="heavy", duration_fs=120 * units.SEC)
    assert len(series) > 50
    assert series.max_abs() > units.US  # loaded PTP wanders by microseconds


def test_comparison_summary():
    result = run_stability_comparison(
        dtp_duration_fs=4 * units.MS, ptp_duration_fs=150 * units.SEC
    )
    assert result.summary["dtp_mtie_flat_under_bound"]
    assert result.summary["ptp_mtie_exceeds_dtp_bound"]
