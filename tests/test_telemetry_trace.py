"""Trace recorder: ring bounds, interning, and disabled-path neutrality."""

import pytest

from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.network.topology import star
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.telemetry import Telemetry, TraceRecorder
from repro.telemetry.events import EV_RX, EV_TX, kind_name


class TestRecorder:
    def test_record_and_tail(self):
        tracer = TraceRecorder(capacity=8)
        for i in range(5):
            tracer.record(i * 10, EV_TX, 0, a=i)
        assert len(tracer) == 5
        assert tracer.recorded == 5
        assert tracer.dropped == 0
        assert tracer.tail(2) == [(30, EV_TX, 0, 3, 0), (40, EV_TX, 0, 4, 0)]
        assert tracer.tail() == tracer.tail(99)

    def test_ring_drops_oldest(self):
        tracer = TraceRecorder(capacity=4)
        for i in range(10):
            tracer.record(i, EV_RX, 0)
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        assert [r[0] for r in tracer.records] == [6, 7, 8, 9]

    def test_subject_interning_is_first_use_order(self):
        tracer = TraceRecorder()
        assert tracer.subject_id("b") == 0
        assert tracer.subject_id("a") == 1
        assert tracer.subject_id("b") == 0
        assert tracer.subjects == ["b", "a"]
        assert tracer.subject_name(1) == "a"

    def test_clear(self):
        tracer = TraceRecorder(capacity=4)
        tracer.record(1, EV_TX, 0)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.recorded == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_kind_names_are_total(self):
        assert kind_name(EV_TX) == "tx"
        assert kind_name(9999).startswith("kind-")


def _run_star(telemetry, duration_fs=400 * units.US, seed=3):
    sim = Simulator()
    net = DtpNetwork(
        sim,
        star(2),
        RandomStreams(seed),
        config=DtpPortConfig(beacon_interval_ticks=200),
        telemetry=telemetry,
    )
    net.start()
    sim.run_until(duration_fs)
    return net


class TestInstrumentation:
    def test_traced_run_records_port_events(self):
        telemetry = Telemetry()
        _run_star(telemetry)
        tracer = telemetry.tracer
        assert tracer.recorded > 0
        kinds = {record[1] for record in tracer.records}
        assert EV_TX in kinds
        assert EV_RX in kinds
        # Every port appears in the subject table.
        assert any("->" in name for name in tracer.subjects)

    def test_disabled_trace_still_collects_metrics(self):
        telemetry = Telemetry(trace=False)
        _run_star(telemetry)
        assert telemetry.tracer is None
        assert telemetry.trace_digest() is None
        sent = telemetry.registry.get("dtp_messages_sent_total")
        assert sum(child.value for _, child in sent.samples()) > 0

    def test_telemetry_none_matches_untraced_offsets(self):
        """telemetry=None and telemetry=Telemetry() must not diverge."""
        t_fs = 400 * units.US
        baseline = _run_star(None, duration_fs=t_fs)
        traced = _run_star(Telemetry(), duration_fs=t_fs)
        counters_a = sorted(
            (key, port.lc.counter_at(t_fs)) for key, port in baseline.ports.items()
        )
        counters_b = sorted(
            (key, port.lc.counter_at(t_fs)) for key, port in traced.ports.items()
        )
        assert counters_a == counters_b

    def test_same_seed_runs_trace_identically(self):
        t1, t2 = Telemetry(), Telemetry()
        _run_star(t1)
        _run_star(t2)
        assert list(t1.tracer.records) == list(t2.tracer.records)
        assert t1.tracer.subjects == t2.tracer.subjects
        assert t1.metrics_digest() == t2.metrics_digest()

    def test_different_seed_runs_trace_differently(self):
        t1, t2 = Telemetry(), Telemetry()
        _run_star(t1, seed=3)
        _run_star(t2, seed=4)
        assert t1.trace_digest() != t2.trace_digest()
