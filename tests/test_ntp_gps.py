"""Integration tests for the NTP and GPS baselines."""

import pytest

from repro.clocks.clock import AdjustableFrequencyClock
from repro.clocks.oscillator import ConstantSkew, Oscillator
from repro.gps.receiver import GpsReceiver, pairwise_precision_fs
from repro.network.packet import PacketNetwork
from repro.network.topology import star
from repro.ntp.protocol import NtpClient, NtpServer, StackJitterModel
from repro.phy.specs import PHY_10G
from repro.sim import units


def make_clock(name, ppm):
    return AdjustableFrequencyClock(
        Oscillator(PHY_10G.period_fs, ConstantSkew(ppm), name=name), name=name
    )


@pytest.fixture
def ntp_pair(sim, streams):
    network = PacketNetwork(sim, star(2))
    server_clock = make_clock("server", -4.0)
    client_clock = make_clock("client", 12.0)
    client_clock.set_time(0, 2 * units.MS)
    server = NtpServer(sim, network, "h0", server_clock, streams.stream("s"))
    client = NtpClient(
        sim, network, "h1", "h0", client_clock, streams.stream("c"),
        poll_interval_fs=4 * units.SEC,
    )
    return server, client, server_clock


class TestNtp:
    def test_client_converges_to_tens_of_microseconds(self, sim, ntp_pair):
        server, client, server_clock = ntp_pair
        client.start()
        worst_tail = 0.0
        for second in range(1, 301):
            sim.run_until(second * units.SEC)
            if second > 150:
                worst_tail = max(
                    worst_tail, abs(client.offset_to(server_clock, sim.now))
                )
        # Paper Table 1: NTP is "us"-class; our LAN model lands in the
        # tens-to-hundreds of microseconds.
        assert worst_tail < units.MS
        assert worst_tail > 100  # but it's not magically perfect

    def test_initial_step_removes_big_error(self, sim, ntp_pair):
        server, client, server_clock = ntp_pair
        client.start()
        sim.run_until(30 * units.SEC)
        assert abs(client.offset_to(server_clock, sim.now)) < 500 * units.US
        assert client.servo.steps >= 1

    def test_samples_record_delay_and_offset(self, sim, ntp_pair):
        _, client, _ = ntp_pair
        client.start()
        sim.run_until(30 * units.SEC)
        assert len(client.samples) >= 5
        for sample in client.samples:
            assert sample.delay_fs > 0

    def test_server_counts_requests(self, sim, ntp_pair):
        server, client, _ = ntp_pair
        client.start()
        sim.run_until(30 * units.SEC)
        assert server.requests_served >= 5

    def test_stop_polling(self, sim, ntp_pair):
        _, client, _ = ntp_pair
        client.start()
        sim.run_until(20 * units.SEC)
        client.stop()
        count = len(client.samples)
        sim.run_until(60 * units.SEC)
        assert len(client.samples) <= count + 1

    def test_stack_jitter_dominates_error(self, sim, streams):
        """With a zero-jitter stack, NTP gets dramatically better —
        evidence the model attributes NTP's error to the right cause."""
        network = PacketNetwork(sim, star(2))
        server_clock = make_clock("server", -4.0)
        client_clock = make_clock("client", 12.0)
        quiet = StackJitterModel(base_fs=units.US, jitter_fs=1, spike_probability=0.0)
        NtpServer(sim, network, "h0", server_clock, streams.stream("s"), stack=quiet)
        client = NtpClient(
            sim, network, "h1", "h0", client_clock, streams.stream("c"),
            poll_interval_fs=4 * units.SEC, stack=quiet,
        )
        client.start()
        worst_tail = 0.0
        for second in range(1, 201):
            sim.run_until(second * units.SEC)
            if second > 100:
                worst_tail = max(
                    worst_tail, abs(client.offset_to(server_clock, sim.now))
                )
        assert worst_tail < 5 * units.US


class TestGps:
    def test_single_receiver_error_bounded(self, streams):
        gps = GpsReceiver(streams.stream("g"))
        errors = [abs(gps.error_fs(t)) for t in range(0, 10**6, 10**4)]
        assert max(errors) <= gps.max_error_fs

    def test_pairwise_precision_ns_scale(self, streams):
        a = GpsReceiver(streams.stream("a"))
        b = GpsReceiver(streams.stream("b"))
        worst = pairwise_precision_fs(a, b, 0, reads=200)
        # Paper: GPS gives ~100 ns precision in practice.
        assert worst < 400 * units.NS

    def test_bias_shifts_reads(self, streams):
        gps = GpsReceiver(streams.stream("g2"), bias_fs=50 * units.NS, sigma_fs=0)
        assert gps.read_fs(1000) == 1000 + 50 * units.NS
