"""Counter wraparound at the 53-bit message boundary (paper Section 4.4).

Messages carry only the 53 LSBs of the 106-bit counter; the low half wraps
every ~667 days.  Synchronization must ride through the wrap seamlessly:
reconstruction picks the congruent value nearest the local counter, and
BEACON_MSB refreshes the high half.
"""

import pytest

from repro.dtp.messages import COUNTER_LOW_BITS
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.network.topology import chain
from repro.sim import units

WRAP = 1 << COUNTER_LOW_BITS


@pytest.fixture
def near_wrap_net(sim, streams):
    """Two nodes whose counters sit just below the 53-bit wrap."""
    net = DtpNetwork(
        sim, chain(2), streams,
        config=DtpPortConfig(msb_interval_beacons=100),
    )
    start = WRAP - 2_000  # ~12.8 us before the low half wraps
    for device in net.devices.values():
        device.gc.set_counter(0, start)
    net.start()
    return net


def test_sync_survives_the_wrap(sim, streams, near_wrap_net):
    net = near_wrap_net
    sim.run_until(units.MS)  # counters cross 2^53 within ~13 us
    assert net.counter_of("n0") > WRAP
    worst = 0
    t = sim.now
    for _ in range(300):
        t += 10 * units.US
        sim.run_until(t)
        worst = max(worst, net.max_abs_offset())
    assert worst <= 4


def test_msb_half_propagates_after_wrap(sim, streams, near_wrap_net):
    net = near_wrap_net
    sim.run_until(2 * units.MS)
    for port in net.ports.values():
        assert port.remote_msb == 1  # the high half ticked over


def test_log_channel_valid_across_wrap(sim, streams, near_wrap_net):
    net = near_wrap_net
    net.attach_logger("n0", "n1")
    sim.run_until(200 * units.US)
    for _ in range(100):
        net.send_log("n0", "n1")
        sim.run_until(sim.now + 5 * units.US)
    samples = net.logged_for("n0", "n1")
    assert len(samples) == 100
    assert all(-4 <= s.offset_ticks <= 4 for s in samples)


def test_max_merge_crosses_wrap_during_partition_heal(sim, streams):
    """Algorithm 2's max-merge carries a partition heal across 2^53.

    One subnet crosses the wrap boundary while the link is down; on heal,
    the BEACON_JOIN payload (53 wrapped LSBs) must reconstruct on the
    lagging side to the *post-wrap* value and pull it forward across the
    boundary — not backwards to the congruent pre-wrap value.
    """
    from repro.dtp.faults import schedule_partition

    net = DtpNetwork(
        sim, chain(2), streams,
        config=DtpPortConfig(msb_interval_beacons=100),
    )
    start = WRAP - 50_000
    for device in net.devices.values():
        device.gc.set_counter(0, start)
    net.start()
    schedule_partition(
        net, "n0", "n1", down_at_fs=50 * units.US, up_at_fs=150 * units.US
    )

    def jump_across_wrap():
        # Emulate a long divergence on n0's side: it has already wrapped
        # by the time the link heals (n1 is still ~42k ticks below 2^53).
        net.devices["n0"].gc.set_counter(sim.now, WRAP + 500)

    sim.schedule_at(100 * units.US, jump_across_wrap)
    sim.run_until(500 * units.US)
    assert net.counter_of("n0") > WRAP
    assert net.counter_of("n1") > WRAP  # merged forward across the wrap
    assert net.max_abs_offset() <= 8
    assert net.all_synchronized()
