"""Unit and property tests for idle-cadence traffic models."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ethernet.frames import MTU_FRAME, JUMBO_FRAME
from repro.ethernet.traffic import (
    BurstyTraffic,
    DelayedTraffic,
    IdleLink,
    PartialLoadTraffic,
    SaturatedTraffic,
    TrafficError,
)


class TestIdleLink:
    def test_every_tick_is_idle(self):
        model = IdleLink()
        for tick in (0, 1, 7, 1000):
            assert model.next_idle_tick(tick) == tick

    def test_zero_utilization(self):
        assert IdleLink().utilization() == 0.0


class TestSaturatedTraffic:
    def test_idle_slots_once_per_frame_slot(self):
        model = SaturatedTraffic(MTU_FRAME)
        first = model.next_idle_tick(0)
        second = model.next_idle_tick(first + 1)
        assert second - first == MTU_FRAME.slot_blocks

    def test_phase_shifts_slots(self):
        base = SaturatedTraffic(MTU_FRAME, phase=0)
        shifted = SaturatedTraffic(MTU_FRAME, phase=7)
        assert shifted.next_idle_tick(0) == base.next_idle_tick(0) + 7

    def test_idle_tick_query_exact_hit(self):
        model = SaturatedTraffic(MTU_FRAME, phase=5)
        slot = model.next_idle_tick(0)
        assert model.next_idle_tick(slot) == slot

    def test_utilization_close_to_one(self):
        assert SaturatedTraffic(JUMBO_FRAME).utilization() > 0.999

    def test_result_never_before_query(self):
        model = SaturatedTraffic(MTU_FRAME, phase=11)
        for tick in range(0, 1000, 37):
            assert model.next_idle_tick(tick) >= tick


class TestPartialLoadTraffic:
    def make(self, load):
        return PartialLoadTraffic(MTU_FRAME, load, random.Random(5))

    def test_zero_load_always_idle_soon(self):
        model = self.make(0.0)
        assert model.next_idle_tick(100) == 100

    def test_monotonic_queries_enforced(self):
        model = self.make(0.5)
        model.next_idle_tick(1000)
        with pytest.raises(TrafficError):
            model.next_idle_tick(10)

    def test_invalid_load_rejected(self):
        with pytest.raises(ValueError):
            self.make(1.0)
        with pytest.raises(ValueError):
            self.make(-0.1)

    def test_average_gap_tracks_load(self):
        """At 50% load, idle opportunities come about one frame apart."""
        model = self.make(0.5)
        slots = []
        tick = 0
        for _ in range(300):
            slot = model.next_idle_tick(tick)
            slots.append(slot)
            tick = slot + 1
        # Average spacing between used slots stays well under the frame
        # size at 50% load (long idle runs offer many slots).
        spacing = (slots[-1] - slots[0]) / (len(slots) - 1)
        assert spacing < MTU_FRAME.blocks

    def test_result_never_before_query(self):
        model = self.make(0.8)
        tick = 0
        for _ in range(200):
            slot = model.next_idle_tick(tick)
            assert slot >= tick
            tick = slot + 17


class TestBurstyTraffic:
    def test_off_period_all_idle(self):
        model = BurstyTraffic(MTU_FRAME, burst_frames=2, idle_ticks=100)
        burst_ticks = 2 * MTU_FRAME.slot_blocks
        inside_off = burst_ticks + 10
        assert model.next_idle_tick(inside_off) == inside_off

    def test_burst_period_one_slot_per_frame(self):
        model = BurstyTraffic(MTU_FRAME, burst_frames=3, idle_ticks=50)
        slot = model.next_idle_tick(0)
        assert slot == MTU_FRAME.slot_blocks - 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BurstyTraffic(MTU_FRAME, burst_frames=0, idle_ticks=10)
        with pytest.raises(ValueError):
            BurstyTraffic(MTU_FRAME, burst_frames=1, idle_ticks=0)

    def test_utilization_between_zero_and_one(self):
        model = BurstyTraffic(MTU_FRAME, burst_frames=5, idle_ticks=500)
        assert 0.0 < model.utilization() < 1.0


class TestDelayedTraffic:
    def test_idle_before_start(self):
        model = DelayedTraffic(SaturatedTraffic(MTU_FRAME), start_tick=1000)
        assert model.next_idle_tick(5) == 5
        assert model.next_idle_tick(999) == 999

    def test_inner_model_after_start(self):
        inner = SaturatedTraffic(MTU_FRAME)
        model = DelayedTraffic(SaturatedTraffic(MTU_FRAME), start_tick=1000)
        assert model.next_idle_tick(1000) == 1000 + inner.next_idle_tick(0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            DelayedTraffic(IdleLink(), start_tick=-1)


@given(
    phase=st.integers(min_value=0, max_value=2000),
    queries=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_property_saturated_slots_are_slots(phase, queries):
    """Whatever we query, the returned tick is at/after the query and is a
    genuine idle slot (querying it again returns itself)."""
    model = SaturatedTraffic(MTU_FRAME, phase=phase)
    for q in queries:
        slot = model.next_idle_tick(q)
        assert slot >= q
        assert model.next_idle_tick(slot) == slot
        assert (slot - phase) % MTU_FRAME.slot_blocks == 0
