"""The racelab determinism and fairness contract.

* same seed, serial vs ``--jobs 2`` -> byte-identical races and report;
* a discipline's fault stream is independent of the competitor count
  (the pi entry of a four-way race == the pi entry racing alone);
* the acceptance pin: skewless beats the PI servo on max offset in the
  oscillator-glitch scenario (quick, seed 0) and the report records it;
* the CLI and the insight report's race section render deterministically.
"""

import json

import pytest

from repro.discipline.base import DisciplineError
from repro.discipline.cli import main as racelab_main
from repro.discipline.racelab import (
    DEFAULT_DISCIPLINES,
    EXTRA_RACE_SCENARIOS,
    RaceSettings,
    race_scenario_names,
    race_specs,
    render_race_report,
    run_race_campaign,
    scenario_settings,
)
from repro.faultlab.scenarios import BUILTIN_SCENARIOS


def small_specs(names=("baseline", "oscillator-glitch")):
    return race_specs(names, quick=True)


class TestDeterminism:
    def test_serial_equals_parallel_byte_identical(self):
        specs = small_specs()
        serial = run_race_campaign(specs, base_seed=3, jobs=1)
        parallel = run_race_campaign(small_specs(), base_seed=3, jobs=2)
        canon = lambda r: json.dumps(r, sort_keys=True)  # noqa: E731
        assert canon(serial) == canon(parallel)
        assert render_race_report(serial) == render_race_report(parallel)

    def test_entry_independent_of_competitor_count(self):
        specs = small_specs(("baseline",))
        solo = run_race_campaign(specs, disciplines=("pi",), base_seed=5)
        field = run_race_campaign(
            small_specs(("baseline",)), disciplines=DEFAULT_DISCIPLINES, base_seed=5
        )
        assert solo["baseline"]["entries"]["pi"] == field["baseline"]["entries"]["pi"]
        assert (
            solo["baseline"]["scenario_digest"]
            == field["baseline"]["scenario_digest"]
        )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(DisciplineError):
            run_race_campaign(small_specs(("baseline",)), disciplines=("pi", "pi"))

    def test_unknown_discipline_rejected_before_running(self):
        with pytest.raises(DisciplineError):
            run_race_campaign(small_specs(("baseline",)), disciplines=("warp",))


class TestAcceptance:
    @pytest.fixture(scope="class")
    def races(self):
        return run_race_campaign(
            race_specs(
                ("baseline", "oscillator-glitch", "congested-baseline"), quick=True
            ),
            base_seed=0,
        )

    def test_four_disciplines_three_scenarios(self, races):
        assert len(races) == 3
        for data in races.values():
            assert sorted(data["entries"]) == sorted(DEFAULT_DISCIPLINES)

    def test_skewless_beats_pi_on_oscillator_glitch(self, races):
        """The issue's acceptance pin: the step-free controller rides out
        the oscillator glitch with a smaller worst excursion."""
        entries = races["oscillator-glitch"]["entries"]
        assert (
            entries["skewless"]["max_abs_offset_fs"]
            < entries["pi"]["max_abs_offset_fs"]
        )

    def test_win_is_recorded_in_report(self, races):
        report = "\n".join(render_race_report(races))
        assert "## oscillator-glitch" in report
        glitch = report.split("## oscillator-glitch", 1)[1].split("## ")[0]
        assert "| 1 | skewless |" in glitch
        assert report.rstrip().splitlines()[-1].startswith("racelab sha256: ")

    def test_congestion_discipline_wins_its_home_track(self, races):
        """Under heavy bursts the marking-assisted PI out-ranks plain PI."""
        entries = races["congested-baseline"]["entries"]
        assert (
            entries["congestion"]["max_abs_offset_fs"]
            < entries["pi"]["max_abs_offset_fs"]
        )

    def test_skewless_never_steps(self, races):
        for data in races.values():
            entry = data["entries"]["skewless"]
            assert entry["clock_steps"] == 0
            assert entry["actions"].get("step", 0) == 0


class TestObserverHook:
    def test_observers_require_scalar_backend(self):
        from repro.discipline.racelab import RaceObserver
        from repro.discipline.base import build_discipline
        from repro.faultlab.campaign import CampaignError, run_scenario

        spec = BUILTIN_SCENARIOS["baseline"](True)
        observer = RaceObserver(build_discipline("pi"))
        with pytest.raises(CampaignError):
            run_scenario(spec, observers=[observer], backend="batched")

    def test_race_observer_is_single_use(self):
        from repro.discipline.racelab import RaceObserver, run_race_scenario
        from repro.discipline.base import build_discipline

        observer = RaceObserver(build_discipline("pi"))
        spec = BUILTIN_SCENARIOS["baseline"](True)
        from repro.faultlab.campaign import run_scenario

        run_scenario(dict(spec), observers=[observer])
        with pytest.raises(DisciplineError):
            run_scenario(dict(spec), observers=[observer])
        # run_race_scenario builds a fresh observer every call, so reuse
        # at the campaign layer is impossible by construction.
        assert run_race_scenario(dict(spec), "pi")["race"]["observations"] > 0


class TestScenarioCard:
    def test_builtins_unchanged_by_race_extras(self):
        assert len(BUILTIN_SCENARIOS) == 9
        assert not set(EXTRA_RACE_SCENARIOS) & set(BUILTIN_SCENARIOS)
        assert race_scenario_names() == (
            list(BUILTIN_SCENARIOS) + list(EXTRA_RACE_SCENARIOS)
        )

    def test_race_only_scenarios_get_settings_overrides(self):
        base = RaceSettings()
        congested = scenario_settings("congested-baseline", base)
        assert congested.burst_probability > base.burst_probability
        assert scenario_settings("baseline", base) is base


class TestFabricTrack:
    """The clos-fabric race card: 128 port directions, diameter 4."""

    @pytest.fixture(scope="class")
    def races(self):
        return run_race_campaign(
            race_specs(("clos-fabric",), quick=True), base_seed=0
        )

    def test_pinned_deterministic_ranking(self, races):
        """quick, seed 0: the step-free controller wins the fabric, the
        daemon's coarse steps lose it, and congestion marking does not
        hurt the PI servo.  Pinned — a ranking flip on the same seed
        means a discipline or the fabric scenario changed behavior."""
        entries = races["clos-fabric"]["entries"]
        assert sorted(entries) == sorted(DEFAULT_DISCIPLINES)
        offsets = {
            label: entry["max_abs_offset_fs"]
            for label, entry in entries.items()
        }
        assert offsets["skewless"] < min(
            offsets["pi"], offsets["congestion"], offsets["daemon"]
        )
        assert offsets["daemon"] > max(
            offsets["skewless"], offsets["pi"], offsets["congestion"]
        )
        assert offsets["congestion"] <= offsets["pi"]

    def test_card_rendered_in_report(self, races):
        report = "\n".join(render_race_report(races))
        assert "## clos-fabric" in report
        card = report.split("## clos-fabric", 1)[1].split("## ")[0]
        assert "| 1 | skewless |" in card
        assert "| 4 | daemon |" in card


class TestCli:
    def test_cli_report_deterministic(self, capsys, tmp_path):
        argv = [
            "--quick", "--seed", "0", "--disciplines", "pi,skewless",
            "oscillator-glitch",
        ]
        assert racelab_main(argv + ["--out", str(tmp_path / "a")]) == 0
        first = capsys.readouterr().out
        assert racelab_main(argv + ["--out", str(tmp_path / "b")]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "racelab sha256: " in first
        report_a = (tmp_path / "a" / "race-report.md").read_text()
        report_b = (tmp_path / "b" / "race-report.md").read_text()
        assert report_a == report_b
        race_json = (tmp_path / "a" / "oscillator-glitch.race.json").read_text()
        assert json.loads(race_json)["entries"]["skewless"]

    def test_cli_list(self, capsys):
        assert racelab_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "oscillator-glitch" in out
        assert "congested-baseline" in out
        assert "disciplines: congestion daemon pi skewless" in out

    def test_cli_json_is_canonical(self, capsys):
        argv = ["--quick", "--disciplines", "pi", "--json", "baseline"]
        assert racelab_main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["baseline"]["entries"]["pi"]["score_samples"] > 0

    def test_umbrella_dispatch(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["racelab", "--list"]) == 0
        assert "disciplines:" in capsys.readouterr().out


class TestInsightIntegration:
    def test_race_artifact_rendered_in_insight_report(self, tmp_path):
        from repro.insight.report import generate_insight_report

        run_race_campaign(
            small_specs(("oscillator-glitch",)),
            disciplines=("pi", "skewless"),
            base_seed=0,
            out_dir=str(tmp_path),
        )
        text = generate_insight_report(str(tmp_path))
        assert "### Discipline race" in text
        assert "winner: skewless" in text
        # Two renders of the same directory are byte-identical.
        assert text == generate_insight_report(str(tmp_path))
