"""Unit tests for tick clocks and the adjustable-frequency (PHC) clock."""

import pytest

from repro.clocks.clock import AdjustableFrequencyClock, FreeRunningClock, TickClock
from repro.clocks.oscillator import ConstantSkew, Oscillator
from repro.sim import units

TICK = units.TICK_10G_FS


def make_clock(ppm=0.0, increment=1):
    return TickClock(Oscillator(TICK, ConstantSkew(ppm)), increment=increment)


class TestTickClock:
    def test_counter_starts_at_zero(self):
        assert make_clock().counter_at(0) == 0

    def test_counter_advances_per_tick(self):
        clock = make_clock()
        assert clock.counter_at(10 * TICK) == 10

    def test_increment_scales_counter(self):
        clock = make_clock(increment=20)
        assert clock.counter_at(10 * TICK) == 200

    def test_invalid_increment_rejected(self):
        with pytest.raises(ValueError):
            make_clock(increment=0)

    def test_set_counter(self):
        clock = make_clock()
        clock.set_counter(5 * TICK, 1000)
        assert clock.counter_at(5 * TICK) == 1000
        assert clock.counter_at(6 * TICK) == 1001

    def test_adjust_to_max_jumps_forward(self):
        clock = make_clock()
        t = 100 * TICK
        assert clock.adjust_to_max(t, 500) is True
        assert clock.counter_at(t) == 500
        assert clock.adjustments == 1

    def test_adjust_to_max_ignores_smaller(self):
        clock = make_clock()
        t = 100 * TICK
        assert clock.adjust_to_max(t, 50) is False
        assert clock.counter_at(t) == 100
        assert clock.adjustments == 0

    def test_adjust_to_max_equal_is_noop(self):
        clock = make_clock()
        t = 100 * TICK
        assert clock.adjust_to_max(t, 100) is False

    def test_counter_monotonic_after_adjustment(self):
        clock = make_clock()
        clock.adjust_to_max(10 * TICK, 1_000)
        assert clock.counter_at(11 * TICK) == 1_001

    def test_time_after_ticks(self):
        clock = make_clock()
        t0 = 5 * TICK
        t1 = clock.time_after_ticks(t0, 3)
        assert clock.counter_at(t1) == clock.counter_at(t0) + 3

    def test_next_tick_after(self):
        clock = make_clock()
        edge = clock.next_tick_after(0)
        assert edge == TICK


class TestFreeRunningClock:
    def test_never_adjusts(self):
        clock = FreeRunningClock(Oscillator(TICK, ConstantSkew(0.0)))
        assert clock.adjust_to_max(TICK * 10, 10**9) is False
        assert clock.counter_at(TICK * 10) == 10

    def test_cannot_be_set(self):
        clock = FreeRunningClock(Oscillator(TICK, ConstantSkew(0.0)))
        with pytest.raises(TypeError):
            clock.set_counter(0, 5)


class TestAdjustableFrequencyClock:
    def make(self, ppm=0.0):
        return AdjustableFrequencyClock(Oscillator(TICK, ConstantSkew(ppm)))

    def test_reads_near_true_time_with_zero_skew(self):
        clock = self.make(0.0)
        t = 10 * units.MS
        assert clock.time_at(t) == pytest.approx(t, abs=TICK)

    def test_step_moves_phase(self):
        clock = self.make()
        t = units.MS
        before = clock.time_at(t)
        clock.step(t, 500_000.0)
        assert clock.time_at(t) == pytest.approx(before + 500_000.0, abs=1)
        assert clock.steps == 1

    def test_slew_changes_rate(self):
        clock = self.make()
        t0 = units.MS
        clock.slew(t0, 100e-6)  # run 100 ppm fast
        t1 = t0 + units.MS
        elapsed = clock.time_at(t1) - clock.time_at(t0)
        assert elapsed == pytest.approx(units.MS * 1.0001, rel=1e-5)

    def test_slew_clamped(self):
        clock = self.make()
        clock.slew(0, 1.0)
        assert clock.freq_adj == pytest.approx(500e-6)

    def test_skewed_oscillator_biases_reading(self):
        clock = self.make(100.0)
        t = units.SEC // 100
        drift = clock.time_at(t) - t
        assert drift == pytest.approx(t * 1e-4, rel=0.01)

    def test_set_time(self):
        clock = self.make()
        clock.set_time(units.MS, 42 * units.SEC)
        assert clock.time_at(units.MS) == pytest.approx(42 * units.SEC, abs=TICK)

    def test_reading_far_before_rebase_raises(self):
        clock = self.make()
        clock.step(10 * units.MS, 1000.0)
        with pytest.raises(ValueError):
            clock.time_at(1 * units.MS)

    def test_reading_slightly_before_rebase_clamps(self):
        clock = self.make()
        clock.step(10 * units.MS, 1000.0)
        near = clock.time_at(10 * units.MS - units.NS)
        assert near == pytest.approx(clock.time_at(10 * units.MS), abs=1)

    def test_continuity_across_slew(self):
        clock = self.make(13.0)
        t = 2 * units.MS
        before = clock.time_at(t)
        clock.slew(t, -50e-6)
        assert clock.time_at(t) == pytest.approx(before, abs=1)
