"""Unit tests for DtpDevice (Algorithm 2)."""


from repro.clocks.oscillator import ConstantSkew, Oscillator
from repro.dtp.device import DtpDevice
from repro.dtp.port import DtpPort
from repro.sim import units

TICK = units.TICK_10G_FS


def make_device(sim, streams, name="dev", ppm=0.0):
    oscillator = Oscillator(TICK, ConstantSkew(ppm), name=name)
    return DtpDevice(sim, name, oscillator, streams.fork(name))


def test_global_counter_ticks(sim, streams):
    device = make_device(sim, streams)
    assert device.global_counter(10 * TICK) == 10


def test_single_port_device_is_nic(sim, streams):
    device = make_device(sim, streams)
    DtpPort(device, "p0")
    assert not device.is_switch
    assert device.port_count() == 1


def test_multi_port_device_is_switch(sim, streams):
    device = make_device(sim, streams)
    DtpPort(device, "p0")
    DtpPort(device, "p1")
    assert device.is_switch


def test_local_jump_lifts_global_counter(sim, streams):
    device = make_device(sim, streams)
    port = DtpPort(device, "p0")
    t = 100 * TICK
    port.lc.set_counter(t, 10_000)
    assert device.on_local_jump(port, t) is True
    assert device.global_counter(t) == 10_000


def test_global_counter_never_decreases_from_jump(sim, streams):
    device = make_device(sim, streams)
    port = DtpPort(device, "p0")
    t = 100 * TICK
    device.gc.set_counter(t, 50_000)
    port.lc.set_counter(t, 10)
    assert device.on_local_jump(port, t) is False
    assert device.global_counter(t) == 50_000


def test_gc_takes_max_of_multiple_ports(sim, streams):
    device = make_device(sim, streams)
    a = DtpPort(device, "a")
    b = DtpPort(device, "b")
    t = 10 * TICK
    a.lc.set_counter(t, 500)
    b.lc.set_counter(t, 700)
    device.on_local_jump(a, t)
    device.on_local_jump(b, t)
    assert device.global_counter(t) == 700
    assert device.local_counters(t) == [500, 700]


def test_gc_keeps_ticking_after_jump(sim, streams):
    device = make_device(sim, streams)
    port = DtpPort(device, "p0")
    t = 10 * TICK
    port.lc.set_counter(t, 1_000)
    device.on_local_jump(port, t)
    assert device.global_counter(t + 5 * TICK) == 1_005
