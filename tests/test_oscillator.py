"""Unit and property tests for oscillator models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.oscillator import (
    IEEE_8023_PPM_LIMIT,
    CompositeSkew,
    ConstantSkew,
    Oscillator,
    RandomWalkSkew,
    SinusoidalSkew,
)
from repro.sim import units

TICK = units.TICK_10G_FS


def make_osc(ppm=0.0, **kwargs):
    return Oscillator(TICK, ConstantSkew(ppm), **kwargs)


class TestSkewModels:
    def test_constant_skew(self):
        skew = ConstantSkew(37.5)
        assert skew.ppm_at(0) == 37.5
        assert skew.ppm_at(10**15) == 37.5

    def test_sinusoidal_skew_oscillates_around_mean(self):
        skew = SinusoidalSkew(mean_ppm=10.0, amplitude_ppm=5.0, period_fs=units.SEC)
        values = [skew.ppm_at(t * units.MS) for t in range(0, 1000, 10)]
        assert min(values) == pytest.approx(5.0, abs=0.1)
        assert max(values) == pytest.approx(15.0, abs=0.1)

    def test_sinusoidal_rejects_bad_period(self):
        with pytest.raises(ValueError):
            SinusoidalSkew(0.0, 1.0, period_fs=0)

    def test_random_walk_is_deterministic_per_seed(self):
        a = RandomWalkSkew(0.0, seed=3)
        b = RandomWalkSkew(0.0, seed=3)
        times = [i * units.MS for i in range(50)]
        assert [a.ppm_at(t) for t in times] == [b.ppm_at(t) for t in times]

    def test_random_walk_is_pure_function_of_time(self):
        walk = RandomWalkSkew(0.0, seed=4)
        late = walk.ppm_at(100 * units.MS)
        early = walk.ppm_at(1 * units.MS)
        assert walk.ppm_at(100 * units.MS) == late
        assert walk.ppm_at(1 * units.MS) == early

    def test_random_walk_respects_excursion_limit(self):
        walk = RandomWalkSkew(0.0, step_ppm=1.0, max_excursion_ppm=2.0, seed=5)
        values = [walk.ppm_at(i * units.MS) for i in range(2000)]
        assert all(-2.0 <= v <= 2.0 for v in values)

    def test_composite_skew_sums(self):
        combined = ConstantSkew(5.0) + ConstantSkew(-3.0)
        assert isinstance(combined, CompositeSkew)
        assert combined.ppm_at(0) == pytest.approx(2.0)


class TestOscillator:
    def test_no_edges_before_first_period(self):
        osc = make_osc(0.0)
        assert osc.ticks_at(TICK - 1) == 0
        assert osc.ticks_at(TICK) == 1

    def test_nominal_tick_count_over_one_ms(self):
        osc = make_osc(0.0)
        assert osc.ticks_at(units.MS) == units.MS // TICK

    def test_fast_oscillator_ticks_more(self):
        fast = make_osc(IEEE_8023_PPM_LIMIT)
        slow = make_osc(-IEEE_8023_PPM_LIMIT)
        t = 100 * units.MS
        diff = fast.ticks_at(t) - slow.ticks_at(t)
        expected = (t // TICK) * 2 * IEEE_8023_PPM_LIMIT * 1e-6
        assert diff == pytest.approx(expected, rel=0.01)

    def test_ticks_monotonic(self):
        osc = make_osc(50.0)
        previous = 0
        for t in range(0, 20 * units.MS, 777_777):
            current = osc.ticks_at(t)
            assert current >= previous
            previous = current

    def test_next_edge_after_is_strictly_later(self):
        osc = make_osc(-20.0)
        t = 0
        for _ in range(100):
            edge = osc.next_edge_after(t)
            assert edge > t
            t = edge

    def test_next_edge_increments_count_by_one(self):
        osc = make_osc(10.0)
        t = 5 * units.MS
        edge = osc.next_edge_after(t)
        assert osc.ticks_at(edge) == osc.ticks_at(t) + 1

    def test_time_of_tick_roundtrip(self):
        osc = make_osc(33.0)
        for n in (1, 2, 100, 12345, 500_000):
            assert osc.ticks_at(osc.time_of_tick(n)) == n

    def test_time_of_tick_rejects_zero(self):
        with pytest.raises(ValueError):
            make_osc().time_of_tick(0)

    def test_query_before_origin_rejected(self):
        osc = Oscillator(TICK, ConstantSkew(0.0), origin_fs=units.MS)
        with pytest.raises(ValueError):
            osc.ticks_at(0)

    def test_backward_queries_supported(self):
        osc = make_osc(5.0)
        late = osc.ticks_at(50 * units.MS)
        early = osc.ticks_at(1 * units.MS)
        assert osc.ticks_at(50 * units.MS) == late
        assert osc.ticks_at(1 * units.MS) == early

    def test_period_at_reflects_skew(self):
        fast = make_osc(IEEE_8023_PPM_LIMIT)
        assert fast.period_at(0) < TICK

    def test_mean_frequency(self):
        osc = make_osc(0.0)
        freq = osc.mean_frequency_hz(0, units.SEC // 100)
        assert freq == pytest.approx(156.25e6, rel=1e-4)

    def test_update_interval_must_cover_period(self):
        with pytest.raises(ValueError):
            Oscillator(TICK, ConstantSkew(0.0), update_interval_fs=TICK // 2)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            Oscillator(0)

    def test_drifting_oscillator_keeps_exact_counts(self):
        osc = Oscillator(
            TICK,
            SinusoidalSkew(0.0, IEEE_8023_PPM_LIMIT, period_fs=10 * units.MS),
            update_interval_fs=units.MS,
        )
        # Count ticks two ways: cumulative query vs edge walking.
        t = 0
        walked = 0
        while t < 2 * units.MS:
            t = osc.next_edge_after(t)
            walked += 1
        assert osc.ticks_at(t) == walked


@given(
    ppm=st.floats(min_value=-100.0, max_value=100.0),
    t=st.integers(min_value=0, max_value=10 * units.MS),
)
@settings(max_examples=50, deadline=None)
def test_property_tick_count_within_ppm_envelope(ppm, t):
    """Realized tick count never strays beyond the +/-100 ppm envelope."""
    osc = Oscillator(TICK, ConstantSkew(ppm))
    ticks = osc.ticks_at(t)
    nominal = t / TICK
    assert nominal * (1 - 2e-4) - 1 <= ticks <= nominal * (1 + 2e-4) + 1


@given(n=st.integers(min_value=1, max_value=1_000_000))
@settings(max_examples=50, deadline=None)
def test_property_time_of_tick_inverts_ticks_at(n):
    osc = Oscillator(TICK, ConstantSkew(77.7))
    t = osc.time_of_tick(n)
    assert osc.ticks_at(t) == n
    assert osc.ticks_at(t - 1) == n - 1
