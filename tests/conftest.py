"""Shared fixtures for the test suite."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(root_seed=1234)
