"""The insight run report: campaign scan, determinism, campaign wiring."""

import os

from repro.faultlab import builtin_specs, run_campaign
from repro.insight import (
    generate_insight_report,
    scan_campaign_dir,
    write_insight_report,
)
from repro.insight.report import _metrics_section
from repro.telemetry.export import file_sha256

SCENARIOS = ["baseline", "two-faced"]


def _run_campaign(directory, jobs=1, profile=False):
    run_campaign(
        builtin_specs(SCENARIOS, quick=True),
        base_seed=0,
        jobs=jobs,
        trace_dir=str(directory),
        metrics_dir=str(directory),
        flight_dir=str(directory),
        profile_dispatch=profile,
    )


def test_scan_campaign_dir(tmp_path):
    _run_campaign(tmp_path)
    scanned = scan_campaign_dir(str(tmp_path))
    assert sorted(scanned) == SCENARIOS
    assert set(scanned["baseline"]) == {"trace", "metrics", "prom"}
    assert set(scanned["two-faced"]) == {"trace", "metrics", "prom", "flight"}
    assert scan_campaign_dir(str(tmp_path / "missing")) == {}


def test_failure_flight_suffix_not_misfiled(tmp_path):
    (tmp_path / "x.failure.flight.jsonl").write_text("{}\n")
    scanned = scan_campaign_dir(str(tmp_path))
    assert scanned == {"x": {"failure_flight": str(tmp_path / "x.failure.flight.jsonl")}}


def test_report_sections(tmp_path):
    _run_campaign(tmp_path)
    report = generate_insight_report(str(tmp_path))
    assert report.startswith("# repro.insight run report")
    assert "scenarios: baseline, two-faced" in report
    assert "### Bound decomposition" in report
    assert "### Offset timeline" in report
    assert "### Violation post-mortem" in report
    assert "causal beacon chain" in report
    assert "### Metrics summary" in report
    assert "beacon cadence" in report and "plausible" in report
    # The report must not embed the directory path: CI diffs reports
    # generated from differently-named artifact trees.
    assert str(tmp_path) not in report


def test_report_byte_identical_serial_vs_jobs(tmp_path):
    _run_campaign(tmp_path / "serial", jobs=1)
    _run_campaign(tmp_path / "par", jobs=2)
    out_a = tmp_path / "serial.md"
    out_b = tmp_path / "par.md"
    write_insight_report(str(tmp_path / "serial"), str(out_a))
    write_insight_report(str(tmp_path / "par"), str(out_b))
    assert file_sha256(str(out_a)) == file_sha256(str(out_b))
    assert out_a.read_bytes() == out_b.read_bytes()


def test_campaign_attaches_insight_summary(tmp_path):
    _run_campaign(tmp_path)
    path = tmp_path / "two-faced.insight.md"
    assert path.exists(), "violating scenario did not get an insight summary"
    text = path.read_text()
    assert text.startswith("# insight: two-faced post-mortem")
    assert "causal beacon chain" in text
    # Fault-free baseline records no violation, hence no summary.
    assert not (tmp_path / "baseline.insight.md").exists()


def test_dispatch_profile_section(tmp_path):
    _run_campaign(tmp_path, profile=True)
    report = generate_insight_report(str(tmp_path))
    assert "### Engine dispatch profile" in report
    assert "DtpPort._process" in report
    assert "%" in report
    # Wall-clock only with the explicit opt-in flag.
    assert "wall-clock durations" not in report
    walled = generate_insight_report(str(tmp_path), wallclock=True)
    assert "wall-clock durations" in walled


def test_empty_directory_report(tmp_path):
    report = generate_insight_report(str(tmp_path))
    assert "no telemetry artifacts found" in report


def test_metrics_section_cadence_math():
    doc = {
        "digest": "d",
        "metrics": {
            "dtp_messages_sent_total": {
                "samples": {
                    '{port="n0->n1",type="BEACON"}': 100,
                    '{port="n1->n0",type="BEACON"}': 100,
                    '{port="n0->n1",type="BEACON_MSB"}': 5,
                    '{port="n0->n1",type="INIT"}': 1,
                }
            },
            "dtp_messages_received_total": {"samples": {}},
        },
    }
    period_fs = 6_400_000
    span_fs = 100 * 200 * period_fs  # exactly 100 beacon intervals
    lines = _metrics_section(doc, span_fs, period_fs)
    text = "\n".join(lines)
    assert "beacons sent: 200 across 2 directions" in text
    assert "~100/direction observed vs ~100 expected" in text
    assert "-> plausible" in text
