"""Unit tests for generator-based processes."""

import pytest

from repro.sim.engine import SimulationError
from repro.sim.process import Process


def test_process_runs_to_completion(sim):
    log = []

    def worker():
        log.append(("start", sim.now))
        yield 100
        log.append(("mid", sim.now))
        yield 50
        log.append(("end", sim.now))

    process = Process(sim, worker())
    sim.run()
    assert log == [("start", 0), ("mid", 100), ("end", 150)]
    assert process.finished


def test_process_stop_cancels_future_resumes(sim):
    log = []

    def worker():
        while True:
            log.append(sim.now)
            yield 10

    process = Process(sim, worker())
    sim.run_until(35)
    process.stop()
    sim.run_until(100)
    assert log == [0, 10, 20, 30]
    assert process.finished


def test_yielding_negative_delay_raises(sim):
    def worker():
        yield -5

    Process(sim, worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_yielding_non_int_raises(sim):
    def worker():
        yield 1.5

    Process(sim, worker())
    with pytest.raises(SimulationError):
        sim.run()


def test_zero_yield_continues_same_time(sim):
    times = []

    def worker():
        times.append(sim.now)
        yield 0
        times.append(sim.now)

    Process(sim, worker())
    sim.run()
    assert times == [0, 0]


def test_two_processes_interleave(sim):
    log = []

    def worker(name, period):
        for _ in range(3):
            log.append((name, sim.now))
            yield period

    Process(sim, worker("a", 10))
    Process(sim, worker("b", 15))
    sim.run()
    assert ("a", 20) in log and ("b", 30) in log
