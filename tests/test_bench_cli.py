"""The ``repro bench`` subcommand: dispatch, discovery, file plumbing.

The measurements themselves are exercised (with real guards) by
``benchmarks/test_perf_core.py``; here the timed collection is stubbed so
the CLI contract — seed-core auto-discovery, atomic rewrite of
``BENCH_core.json``, ``--dry-run`` / ``--out`` — stays cheap to verify.
"""

import json
from pathlib import Path

import pytest

import repro.bench as bench
from repro.cli import main as repro_main

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_find_seed_core_walks_up_from_repo():
    found = bench.find_seed_core(REPO_ROOT / "src" / "repro")
    assert found == REPO_ROOT / "benchmarks" / "_seed_core.py"


def test_find_seed_core_misses_outside_repo(tmp_path):
    assert bench.find_seed_core(tmp_path) is None


def test_load_seed_core_imports_module():
    module = bench.load_seed_core(REPO_ROOT / "benchmarks" / "_seed_core.py")
    assert hasattr(module, "SeedSimulator")
    assert hasattr(module, "seed_implementation")


@pytest.fixture
def stub_collect(monkeypatch):
    calls = {}

    def fake_collect(repeats, seed_core=None):
        calls["repeats"] = repeats
        calls["seed_core"] = seed_core
        return {"engine": {"events_per_sec": 1}}

    monkeypatch.setattr(bench, "collect", fake_collect)
    return calls


def test_bench_writes_out_path(stub_collect, tmp_path, capsys):
    out = tmp_path / "BENCH.json"
    rc = repro_main(["bench", "--out", str(out), "--repeats", "2"])
    assert rc == 0
    assert stub_collect["repeats"] == 2
    assert json.loads(out.read_text()) == {"engine": {"events_per_sec": 1}}
    # The measurements also go to stdout.
    assert '"events_per_sec": 1' in capsys.readouterr().out


def test_bench_dry_run_writes_nothing(stub_collect, tmp_path):
    out = tmp_path / "BENCH.json"
    rc = repro_main(["bench", "--out", str(out), "--dry-run"])
    assert rc == 0
    assert not out.exists()


def test_bench_no_seed_skips_seed_core(stub_collect, tmp_path):
    repro_main(["bench", "--no-seed", "--dry-run"])
    assert stub_collect["seed_core"] is None


def test_bench_rejects_zero_repeats(stub_collect):
    with pytest.raises(SystemExit):
        repro_main(["bench", "--repeats", "0"])
