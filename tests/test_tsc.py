"""Unit tests for the TSC model."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.clocks.tsc import TSC_FREQUENCY_HZ, TSC_PERIOD_FS, TscCounter
from repro.sim import units


def test_tsc_period_matches_frequency():
    assert TSC_PERIOD_FS == round(units.SEC / TSC_FREQUENCY_HZ)


def test_rdtsc_counts_cycles():
    tsc = TscCounter()
    cycles = tsc.rdtsc(units.MS)
    # The integer-femtosecond period rounds 344827.58... fs to 344828 fs,
    # a ~1.2 ppm quantization of the nominal rate.
    assert cycles == pytest.approx(TSC_FREQUENCY_HZ / 1000, rel=5e-6)


def test_rdtsc_monotonic():
    tsc = TscCounter(skew=ConstantSkew(25.0))
    previous = -1
    for t in range(0, 5 * units.MS, 313_131):
        value = tsc.rdtsc(t)
        assert value >= previous
        previous = value


def test_skewed_tsc_runs_off_nominal():
    fast = TscCounter(skew=ConstantSkew(50.0))
    slow = TscCounter(skew=ConstantSkew(-50.0))
    t = 10 * units.MS
    assert fast.rdtsc(t) > slow.rdtsc(t)


def test_frequency_hz_reports_nominal():
    tsc = TscCounter()
    assert tsc.frequency_hz() == pytest.approx(TSC_FREQUENCY_HZ, rel=5e-6)
