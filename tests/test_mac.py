"""Tests for the MAC layer: CRC-32, framing, and PCS transparency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ethernet.mac import (
    BROADCAST,
    ETHERTYPE_IPV4,
    MIN_PAYLOAD_BYTES,
    MacError,
    MacFrame,
    address,
    crc32,
)
from repro.phy.pcs_stream import PcsTransmitStream, receive_stream


class TestCrc32:
    def test_known_vector_check_string(self):
        """The canonical CRC-32 check value: crc32(b"123456789")."""
        assert crc32(b"123456789") == 0xCBF43926

    def test_known_vector_empty(self):
        assert crc32(b"") == 0x00000000

    def test_matches_zlib(self):
        import zlib

        for data in (b"hello", bytes(range(256)), b"\x00" * 64):
            assert crc32(data) == zlib.crc32(data)

    def test_detects_single_bit_flip(self):
        data = bytearray(b"The Datacenter Time Protocol")
        reference = crc32(bytes(data))
        data[5] ^= 0x10
        assert crc32(bytes(data)) != reference


class TestMacFrame:
    def make(self, payload=b"hello world"):
        return MacFrame(
            destination=address("aa:bb:cc:dd:ee:ff"),
            source=address("11:22:33:44:55:66"),
            ethertype=ETHERTYPE_IPV4,
            payload=payload,
        )

    def test_serialize_parse_roundtrip(self):
        frame = self.make()
        parsed = MacFrame.parse(frame.serialize(), original_payload_len=11)
        assert parsed == frame

    def test_short_payload_padded_to_minimum(self):
        frame = self.make(b"x")
        wire = frame.serialize()
        assert len(wire) == 14 + MIN_PAYLOAD_BYTES + 4  # == 64

    def test_fcs_corruption_detected(self):
        wire = bytearray(self.make().serialize())
        wire[20] ^= 0x01
        with pytest.raises(MacError, match="FCS"):
            MacFrame.parse(bytes(wire))

    def test_wire_bytes_has_preamble(self):
        wire = self.make().wire_bytes()
        assert wire[:7] == bytes([0x55] * 7)
        assert wire[7] == 0xD5
        assert MacFrame.parse_wire(wire, original_payload_len=11) == self.make()

    def test_bad_preamble_rejected(self):
        wire = bytearray(self.make().wire_bytes())
        wire[0] = 0x00
        with pytest.raises(MacError, match="preamble"):
            MacFrame.parse_wire(bytes(wire))

    def test_invalid_addresses_rejected(self):
        with pytest.raises(MacError):
            MacFrame(b"\x01", BROADCAST, 0x0800, b"")
        with pytest.raises(MacError):
            address("nonsense")
        with pytest.raises(MacError):
            address("aa:bb:cc:dd:ee")

    def test_truncated_frame_rejected(self):
        with pytest.raises(MacError):
            MacFrame.parse(b"\x00" * 10)


class TestMacThroughPcs:
    def test_frame_survives_pcs_with_dtp_messages(self):
        """End-to-end transparency: a real FCS-protected frame crosses the
        PCS intact while DTP messages ride the surrounding idle blocks."""
        frame = MacFrame(
            destination=address("aa:bb:cc:dd:ee:ff"),
            source=address("11:22:33:44:55:66"),
            ethertype=0x88B5,
            payload=bytes(range(200)),
        )
        tx = PcsTransmitStream()
        tx.queue_dtp((0b010 << 53) | 123456)
        tx.send_frame(frame.wire_bytes())
        tx.queue_dtp((0b010 << 53) | 123457)
        tx.send_idle(2)
        frames, messages, _ = receive_stream(tx.blocks)
        assert len(frames) == 1
        recovered = MacFrame.parse_wire(frames[0], original_payload_len=200)
        assert recovered == frame  # FCS verified: bit-exact transport
        assert messages == [(0b010 << 53) | 123456, (0b010 << 53) | 123457]


@given(payload=st.binary(min_size=0, max_size=1500))
@settings(max_examples=100, deadline=None)
def test_property_frame_roundtrip(payload):
    frame = MacFrame(
        destination=BROADCAST,
        source=address("02:00:00:00:00:01"),
        ethertype=0x0800,
        payload=payload,
    )
    parsed = MacFrame.parse(frame.serialize(), original_payload_len=len(payload))
    assert parsed.payload == payload
