"""Tests for block synchronization and the parameter sweeps."""



from repro.experiments.sweeps import sweep_beacon_vs_skew, sweep_ber, sweep_cable_length
from repro.phy.block_sync import (
    HI_BER_THRESHOLD,
    LOCK_THRESHOLD,
    BlockSync,
    blocks_to_bitstream,
    headers_from_bitstream,
)
from repro.phy.blocks import idle_block
from repro.sim import units


class TestBlockSync:
    def test_locks_after_64_valid_headers(self):
        sync = BlockSync()
        for index in range(LOCK_THRESHOLD):
            locked = sync.push_header(0b01)
            assert locked == (index == LOCK_THRESHOLD - 1)
        assert sync.locked

    def test_invalid_header_resets_acquisition(self):
        sync = BlockSync()
        for _ in range(LOCK_THRESHOLD - 1):
            sync.push_header(0b10)
        sync.push_header(0b00)  # invalid: slip
        assert not sync.locked
        assert sync.slips == 1
        for _ in range(LOCK_THRESHOLD):
            sync.push_header(0b10)
        assert sync.locked

    def test_hi_ber_drops_lock(self):
        sync = BlockSync()
        sync.push_stream([0b01] * LOCK_THRESHOLD)
        assert sync.locked
        sync.push_stream([0b11] * HI_BER_THRESHOLD)
        assert not sync.locked
        assert sync.hi_ber

    def test_occasional_errors_keep_lock(self):
        sync = BlockSync()
        sync.push_stream([0b01] * LOCK_THRESHOLD)
        pattern = ([0b01] * 2000 + [0b00]) * 10  # 1 bad header per 2000
        sync.push_stream(pattern)
        assert sync.locked
        assert not sync.hi_ber

    def test_relock_after_hi_ber(self):
        sync = BlockSync()
        sync.push_stream([0b01] * LOCK_THRESHOLD)
        sync.push_stream([0b00] * HI_BER_THRESHOLD)
        assert not sync.locked
        sync.push_stream([0b01] * LOCK_THRESHOLD)
        assert sync.locked

    def test_aligned_bitstream_locks(self):
        blocks = [idle_block().to_int()] * 100
        headers = headers_from_bitstream(blocks_to_bitstream(blocks))
        sync = BlockSync()
        states = sync.push_stream(headers)
        assert states[-1] is True

    def test_misaligned_bitstream_does_not_lock(self):
        """With a bit slip the '10' headers land on scrambler-ish payload
        positions; all-idle payloads are zeros, so headers read 00."""
        blocks = [idle_block().to_int()] * 100
        bits = blocks_to_bitstream(blocks)
        headers = headers_from_bitstream(bits, offset=7)
        sync = BlockSync()
        sync.push_stream(headers)
        assert not sync.locked


class TestSweeps:
    def test_beacon_vs_skew_within_bound(self):
        result = sweep_beacon_vs_skew(
            intervals=[200, 4000], ppm_gaps=[0.0, 200.0],
            duration_fs=3 * units.MS,
        )
        assert result.summary["all_within_bound"]
        assert len(result.summary["table"]) == 3

    def test_cable_length_sweep(self):
        result = sweep_cable_length(
            lengths_m=[10.24, 33.3, 1000.0], duration_fs=2 * units.MS
        )
        assert result.summary["all_within_five_ticks"]
        assert result.summary["integer_tick_lengths_within_four"]

    def test_ber_sweep(self):
        result = sweep_ber(bers=[0.0, 1e-6], duration_fs=3 * units.MS)
        assert result.summary["all_within_bound"]
