"""Tests for block synchronization and the parameter sweeps."""



from repro.experiments.sweeps import sweep_beacon_vs_skew, sweep_ber, sweep_cable_length
from repro.phy.block_sync import (
    HI_BER_THRESHOLD,
    LOCK_THRESHOLD,
    BlockSync,
    blocks_to_bitstream,
    headers_from_bitstream,
)
from repro.phy.blocks import idle_block
from repro.sim import units


class TestBlockSync:
    def test_locks_after_64_valid_headers(self):
        sync = BlockSync()
        for index in range(LOCK_THRESHOLD):
            locked = sync.push_header(0b01)
            assert locked == (index == LOCK_THRESHOLD - 1)
        assert sync.locked

    def test_invalid_header_resets_acquisition(self):
        sync = BlockSync()
        for _ in range(LOCK_THRESHOLD - 1):
            sync.push_header(0b10)
        sync.push_header(0b00)  # invalid: slip
        assert not sync.locked
        assert sync.slips == 1
        for _ in range(LOCK_THRESHOLD):
            sync.push_header(0b10)
        assert sync.locked

    def test_hi_ber_drops_lock(self):
        sync = BlockSync()
        sync.push_stream([0b01] * LOCK_THRESHOLD)
        assert sync.locked
        sync.push_stream([0b11] * HI_BER_THRESHOLD)
        assert not sync.locked
        assert sync.hi_ber

    def test_occasional_errors_keep_lock(self):
        sync = BlockSync()
        sync.push_stream([0b01] * LOCK_THRESHOLD)
        pattern = ([0b01] * 2000 + [0b00]) * 10  # 1 bad header per 2000
        sync.push_stream(pattern)
        assert sync.locked
        assert not sync.hi_ber

    def test_relock_after_hi_ber(self):
        sync = BlockSync()
        sync.push_stream([0b01] * LOCK_THRESHOLD)
        sync.push_stream([0b00] * HI_BER_THRESHOLD)
        assert not sync.locked
        sync.push_stream([0b01] * LOCK_THRESHOLD)
        assert sync.locked

    def test_aligned_bitstream_locks(self):
        blocks = [idle_block().to_int()] * 100
        headers = headers_from_bitstream(blocks_to_bitstream(blocks))
        sync = BlockSync()
        states = sync.push_stream(headers)
        assert states[-1] is True

    def test_misaligned_bitstream_does_not_lock(self):
        """With a bit slip the '10' headers land on scrambler-ish payload
        positions; all-idle payloads are zeros, so headers read 00."""
        blocks = [idle_block().to_int()] * 100
        bits = blocks_to_bitstream(blocks)
        headers = headers_from_bitstream(bits, offset=7)
        sync = BlockSync()
        sync.push_stream(headers)
        assert not sync.locked


class TestSweeps:
    def test_beacon_vs_skew_within_bound(self):
        result = sweep_beacon_vs_skew(
            intervals=[200, 4000], ppm_gaps=[0.0, 200.0],
            duration_fs=3 * units.MS,
        )
        assert result.summary["all_within_bound"]
        assert len(result.summary["table"]) == 3

    def test_cable_length_sweep(self):
        result = sweep_cable_length(
            lengths_m=[10.24, 33.3, 1000.0], duration_fs=2 * units.MS
        )
        assert result.summary["all_within_five_ticks"]
        assert result.summary["integer_tick_lengths_within_four"]

    def test_ber_sweep(self):
        result = sweep_ber(bers=[0.0, 1e-6], duration_fs=3 * units.MS)
        assert result.summary["all_within_bound"]


# ----------------------------------------------------------------------
# Relock recovery property (the link supervisor's 64b/66b signal source)
# ----------------------------------------------------------------------
import random

from hypothesis import given, settings
from hypothesis import strategies as st

VALID_HEADERS = (0b01, 0b10)


def _first_lock_index(headers):
    """Oracle: index completing the first LOCK_THRESHOLD-valid run."""
    run = 0
    for index, header in enumerate(headers):
        if header in VALID_HEADERS:
            run += 1
            if run >= LOCK_THRESHOLD:
                return index
        else:
            run = 0
    return None


def _ber_headers(count, ber, seed):
    """A clean alternating header stream with per-bit flips at ``ber``."""
    rng = random.Random(seed)
    headers = []
    for index in range(count):
        header = VALID_HEADERS[index % 2]
        for bit in (0, 1):
            if ber and rng.random() < ber:
                header ^= 1 << bit
        headers.append(header)
    return headers


@given(
    prefix=st.lists(st.integers(min_value=0, max_value=3), max_size=200),
    ber=st.sampled_from([0.0, 1e-4, 1e-3, 1e-2, 5e-2]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
@settings(max_examples=150, deadline=None)
def test_property_relock_after_corrupt_prefix(prefix, ber, seed):
    """After any corrupt header prefix, BlockSync regains lock exactly
    when the windowed header rule allows: at the first run of
    LOCK_THRESHOLD consecutive valid headers in the post-prefix stream,
    across the swept BER range."""
    sync = BlockSync()
    # An arbitrary prefix, ended with a guaranteed-invalid header so the
    # acquisition run always restarts from zero at the stream boundary.
    sync.push_stream(list(prefix) + [0b00])
    assert not sync.locked
    stream = _ber_headers(1000, ber, seed)
    states = sync.push_stream(stream)
    oracle = _first_lock_index(stream)
    if oracle is None:
        assert True not in states
    else:
        assert states.index(True) == oracle


def test_relock_sweep_across_ber():
    """Deterministic sweep: lock latency degrades monotonically-ish with
    BER but the rule ("64 consecutive valid headers") never changes."""
    for ber in (0.0, 1e-4, 1e-3, 1e-2):
        sync = BlockSync()
        sync.push_stream([0b11] * 10)  # corrupt prefix
        stream = _ber_headers(5000, ber, seed=1234)
        states = sync.push_stream(stream)
        oracle = _first_lock_index(stream)
        assert oracle is not None  # 5000 headers always contain a run
        assert states.index(True) == oracle
        assert sync.headers_seen == 10 + 5000
