"""Property tests: the 4T / 4TD bounds hold fault-free (paper Section 3.3).

Randomized skews (anywhere in the IEEE +/-100 ppm envelope) and chain
depths, checked by the faultlab invariant checker — the regression net
underneath every fault scenario's "zero violations" claim.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.network import DtpNetwork
from repro.faultlab import InvariantChecker
from repro.network.topology import chain
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

ppm = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _run_checked_chain(hosts, ppms, seed, duration_fs):
    sim = Simulator()
    streams = RandomStreams(root_seed=seed)
    skews = {f"n{i}": ConstantSkew(ppms[i]) for i in range(hosts)}
    net = DtpNetwork(sim, chain(hosts), streams, skews=skews)
    checker = InvariantChecker(net)
    net.start()
    sim.run_until(duration_fs)
    return net, checker


@settings(max_examples=10, deadline=None)
@given(ppms=st.tuples(ppm, ppm), seed=st.integers(0, 2**20))
def test_peer_bound_holds_fault_free(ppms, seed):
    net, checker = _run_checked_chain(2, ppms, seed, 800 * units.US)
    assert checker.pairs_checked > 0
    assert checker.total_violations == 0
    assert net.max_abs_offset() <= 4 * net.devices["n0"].counter_increment


@settings(max_examples=6, deadline=None)
@given(
    hosts=st.integers(min_value=3, max_value=5),
    ppms=st.tuples(ppm, ppm, ppm, ppm, ppm),
    seed=st.integers(0, 2**20),
)
def test_multihop_bound_holds_fault_free(hosts, ppms, seed):
    _net, checker = _run_checked_chain(hosts, ppms, seed, 800 * units.US)
    assert checker.pairs_checked > 0
    assert checker.total_violations == 0
    # The worst checkable pair sits within 4TD for its depth D.
    worst = checker.worst_checkable_offset()
    deepest = max(bound for _a, _b, bound in checker.checkable_pairs())
    assert worst is not None and worst <= deepest
