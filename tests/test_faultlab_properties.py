"""Property tests: the 4T / 4TD bounds hold fault-free (paper Section 3.3).

Randomized skews (anywhere in the IEEE +/-100 ppm envelope) and chain
depths, checked by the faultlab invariant checker — the regression net
underneath every fault scenario's "zero violations" claim.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.network import DtpNetwork
from repro.faultlab import InvariantChecker
from repro.network.topology import chain
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams

ppm = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def _run_checked_chain(hosts, ppms, seed, duration_fs):
    sim = Simulator()
    streams = RandomStreams(root_seed=seed)
    skews = {f"n{i}": ConstantSkew(ppms[i]) for i in range(hosts)}
    net = DtpNetwork(sim, chain(hosts), streams, skews=skews)
    checker = InvariantChecker(net)
    net.start()
    sim.run_until(duration_fs)
    return net, checker


# These two tests are derandomized (and skip the example database): the
# 4TD zero-violation claim is *transiently falsifiable* — a gc wave from a
# fast far-end clock can put an adjacent pair one tick over 4T for under a
# beacon interval (see test_known_adjacent_transient_exceeds_direct_bound
# below).  Random exploration eventually finds such skew patterns, which
# makes CI flaky without weakening what the fixed examples verify.
@settings(max_examples=10, deadline=None, derandomize=True, database=None)
@given(ppms=st.tuples(ppm, ppm), seed=st.integers(0, 2**20))
def test_peer_bound_holds_fault_free(ppms, seed):
    net, checker = _run_checked_chain(2, ppms, seed, 800 * units.US)
    assert checker.pairs_checked > 0
    assert checker.total_violations == 0
    assert net.max_abs_offset() <= 4 * net.devices["n0"].counter_increment


@settings(max_examples=6, deadline=None, derandomize=True, database=None)
@given(
    hosts=st.integers(min_value=3, max_value=5),
    ppms=st.tuples(ppm, ppm, ppm, ppm, ppm),
    seed=st.integers(0, 2**20),
)
def test_multihop_bound_holds_fault_free(hosts, ppms, seed):
    _net, checker = _run_checked_chain(hosts, ppms, seed, 800 * units.US)
    assert checker.pairs_checked > 0
    assert checker.total_violations == 0
    # The worst checkable pair sits within 4TD for its depth D.
    worst = checker.worst_checkable_offset()
    deepest = max(bound for _a, _b, bound in checker.checkable_pairs())
    assert worst is not None and worst <= deepest


def test_known_adjacent_transient_exceeds_direct_bound():
    """Documented counterexample: the per-pair 4TD bound is transiently loose.

    Found by hypothesis exploration (hosts=5, ppms=(0, 1, 0, 9, 10),
    seed=541): the fast far-end clocks drag the whole chain up via gc
    propagation, and when the wave reaches ``n2`` one beacon interval
    before ``n1``, the *adjacent* pair n1-n2 briefly sits at 5 ticks — one
    over its 4T budget — until n2's next beacon pulls n1 up.  The global
    bound for the chain's diameter still holds; only the per-hop-distance
    reading of 4TD is violated, and only for under a beacon interval.

    Recorded deterministically here (the simulation is seeded and pure
    integer) so the behavior is pinned, and explained with repro.insight
    to assert the causal mechanism really is beacon-wave propagation.
    """
    from repro.insight import explain_violation
    from repro.telemetry import Telemetry, TraceIndex

    sim = Simulator()
    streams = RandomStreams(root_seed=541)
    ppms = (0.0, 1.0, 0.0, 9.0, 10.0)
    skews = {f"n{i}": ConstantSkew(ppms[i]) for i in range(5)}
    telemetry = Telemetry(trace_capacity=1 << 22)
    net = DtpNetwork(sim, chain(5), streams, skews=skews, telemetry=telemetry)
    checker = InvariantChecker(net)
    net.start()
    sim.run_until(800 * units.US)

    assert checker.total_violations > 0, "counterexample no longer reproduces"
    increment = net.devices["n0"].counter_increment
    for violation in checker.violations:
        assert violation.subject == "n1-n2"
        # One tick over the 4T direct budget, never worse.
        assert abs(violation.detail["offset"]) == 5 * increment
        assert violation.detail["bound"] == 4 * increment
    # The network-diameter reading of 4TD still holds throughout.
    deepest = max(bound for _a, _b, bound in checker.checkable_pairs())
    worst = checker.worst_checkable_offset()
    assert worst is not None and worst <= deepest

    # The insight chain must attribute the transient to beacon propagation.
    index = TraceIndex.from_recorder(telemetry.tracer)
    first = checker.violations[0]
    explanation = explain_violation(
        index,
        {
            "time_fs": first.time_fs,
            "subject": first.subject,
            "invariant": first.invariant,
        },
    )
    assert explanation.chain, "no causal chain for the transient"
    assert all(hop.cause in ("beacon", "join") for hop in explanation.chain)
    # The wave demonstrably came through the far side of the chain.
    touched = {hop.node for hop in explanation.chain}
    assert touched & {"n3", "n4"}


def test_transient_allowance_forgives_known_counterexample():
    """The opt-in sub-interval reading of 4TD (docs/FAULTLAB.md).

    ``transient_allowance_intervals=1`` forgives a pair that sits above
    its bound for at most one check tick — exactly the known propagation
    transient pinned above — while anything persistent is still recorded.
    The knob defaults off, so the strict instantaneous reading (under
    which the counterexample is a real violation) stays the default.
    """
    def run(allowance):
        sim = Simulator()
        streams = RandomStreams(root_seed=541)
        ppms = (0.0, 1.0, 0.0, 9.0, 10.0)
        skews = {f"n{i}": ConstantSkew(ppms[i]) for i in range(5)}
        net = DtpNetwork(sim, chain(5), streams, skews=skews)
        checker = InvariantChecker(
            net, transient_allowance_intervals=allowance
        )
        net.start()
        sim.run_until(800 * units.US)
        return checker

    strict = run(0)
    assert strict.total_violations > 0
    assert strict.transients_forgiven == 0

    lax = run(1)
    assert lax.total_violations == 0
    # Every strict-mode violation was a <=1-interval transient.
    assert lax.transients_forgiven == strict.total_violations
