"""Unit tests for the packet-switched network substrate."""

import pytest

from repro.network.packet import PacketNetwork, Switch
from repro.network.topology import TopologyError, chain, paper_testbed, star
from repro.sim import units


def make_star(sim, **kwargs):
    return PacketNetwork(sim, star(4), **kwargs)


class TestDelivery:
    def test_packet_reaches_destination(self, sim):
        net = make_star(sim)
        received = []
        net.host("h1").register_handler(
            "test", lambda p, first, last: received.append(p)
        )
        net.send("h0", "h1", 1000, "test")
        sim.run()
        assert len(received) == 1
        assert received[0].src == "h0"

    def test_hops_recorded(self, sim):
        net = PacketNetwork(sim, paper_testbed())
        packet = net.send("S4", "S11", 500, "udp")
        sim.run()
        assert packet.hops == ["S1", "S0", "S3", "S11"]

    def test_delivery_time_includes_serialization_and_propagation(self, sim):
        net = PacketNetwork(sim, chain(2))
        arrivals = []
        net.host("n1").register_handler(
            "t", lambda p, first, last: arrivals.append((first, last))
        )
        packet = net.send("n0", "n1", 1000, "t")
        sim.run()
        first, last = arrivals[0]
        ser_fs = round(packet.wire_bytes * 8 * units.SEC / 10e9)
        delay_fs = 8 * units.TICK_10G_FS  # default 10.24 m cable
        assert first == delay_fs
        assert last == ser_fs + delay_fs

    def test_hw_timestamps_set(self, sim):
        net = make_star(sim)
        packet = net.send("h0", "h1", 100, "x")
        sim.run()
        assert packet.hw_tx_fs is not None
        assert packet.hw_rx_fs is not None
        assert packet.hw_rx_fs > packet.hw_tx_fs

    def test_unknown_kind_silently_ignored(self, sim):
        net = make_star(sim)
        net.send("h0", "h1", 100, "mystery")
        sim.run()
        assert net.host("h1").packets_received == 1

    def test_send_from_switch_rejected(self, sim):
        net = make_star(sim)
        with pytest.raises(TopologyError):
            net.send("sw0", "h0", 100, "x")


class TestQueueing:
    def test_fifo_order_preserved(self, sim):
        net = PacketNetwork(sim, chain(2))
        order = []
        net.host("n1").register_handler(
            "t", lambda p, first, last: order.append(p.payload["i"])
        )
        for i in range(10):
            net.send("n0", "n1", 1500, "t", {"i": i})
        sim.run()
        assert order == list(range(10))

    def test_queueing_delays_later_packets(self, sim):
        net = PacketNetwork(sim, chain(2))
        lasts = []
        net.host("n1").register_handler("t", lambda p, f, l: lasts.append(l))
        for _ in range(5):
            net.send("n0", "n1", 1500, "t")
        sim.run()
        gaps = [b - a for a, b in zip(lasts, lasts[1:])]
        ser = round(1520 * 8 * units.SEC / 10e9)
        assert all(gap == ser for gap in gaps)

    def test_tail_drop_under_overload(self, sim):
        net = PacketNetwork(sim, chain(2), queue_capacity_bytes=5000)
        count = [0]
        net.host("n1").register_handler("t", lambda p, f, l: count.__setitem__(0, count[0] + 1))
        for _ in range(100):
            net.send("n0", "n1", 1500, "t")
        sim.run()
        assert count[0] < 100  # some were dropped

    def test_virtual_load_adds_wait(self, sim):
        from repro.network.virtualload import VirtualBacklog
        import random

        net = PacketNetwork(sim, chain(2))
        iface = net.host("n0").interfaces["n1"]
        iface.virtual_load = VirtualBacklog(
            rng=random.Random(1), offered_bps=20e9  # overloaded: pinned cap
        )
        lasts = []
        net.host("n1").register_handler("t", lambda p, f, l: lasts.append(l))
        net.send("n0", "n1", 100, "t")
        sim.run()
        # Wait must reflect a near-full buffer (cap 512 KiB ~ 400+ us).
        assert lasts[0] > 200 * units.US


class TestSwitchModes:
    def test_cut_through_faster_than_store_forward(self):
        from repro.sim.engine import Simulator

        arrival = {}
        for mode in (Switch.MODE_STORE_FORWARD, Switch.MODE_CUT_THROUGH):
            sim = Simulator()
            net = PacketNetwork(sim, star(2), switch_mode=mode)
            times = []
            net.host("h1").register_handler("t", lambda p, f, l: times.append(l))
            net.send("h0", "h1", 1500, "t")
            sim.run()
            arrival[mode] = times[0]
        assert arrival[Switch.MODE_CUT_THROUGH] < arrival[Switch.MODE_STORE_FORWARD]

    def test_transparent_clock_corrects_event_messages(self, sim):
        net = PacketNetwork(
            sim, star(2), transparent_clocks=True, tc_mode=Switch.TC_IDEAL
        )
        packet = net.send("h0", "h1", 100, "ptp_sync")
        sim.run()
        assert packet.tc_correction_fs > 0

    def test_transparent_clock_ignores_other_kinds(self, sim):
        net = PacketNetwork(sim, star(2), transparent_clocks=True)
        packet = net.send("h0", "h1", 100, "udp")
        sim.run()
        assert packet.tc_correction_fs == 0

    def test_enqueue_stamped_tc_misses_queue_wait(self):
        """The imperfect TC under-corrects when the egress port is busy."""
        from repro.sim.engine import Simulator

        corrections = {}
        for tc_mode in (Switch.TC_IDEAL, Switch.TC_ENQUEUE_STAMPED):
            sim = Simulator()
            net = PacketNetwork(
                sim, star(4), transparent_clocks=True, tc_mode=tc_mode
            )
            # Oversubscribe the switch->h1 egress from two sources so a
            # real queue builds, then send the Sync through it once the
            # backlog exists.
            for _ in range(10):
                net.send("h2", "h1", 1500, "udp")
                net.send("h3", "h1", 1500, "udp")
            sync_box = []
            sim.schedule_at(
                6 * units.US,
                lambda: sync_box.append(net.send("h0", "h1", 100, "ptp_sync")),
            )
            sim.run()
            corrections[tc_mode] = sync_box[0].tc_correction_fs
        assert corrections[Switch.TC_IDEAL] > corrections[Switch.TC_ENQUEUE_STAMPED]

    def test_invalid_switch_mode_rejected(self, sim):
        with pytest.raises(ValueError):
            Switch(sim, "s", mode="warp")

    def test_invalid_tc_mode_rejected(self, sim):
        with pytest.raises(ValueError):
            Switch(sim, "s", tc_mode="psychic")


class TestRouting:
    def test_all_host_pairs_reachable(self, sim):
        net = PacketNetwork(sim, paper_testbed())
        hosts = list(net.hosts)
        delivered = []
        for name in hosts:
            net.host(name).register_handler(
                "t", lambda p, f, l: delivered.append((p.src, p.dst))
            )
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    net.send(src, dst, 100, "t")
        sim.run()
        assert len(delivered) == len(hosts) * (len(hosts) - 1)
