"""End-to-end integration scenarios combining multiple subsystems."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.clocks.tsc import TscCounter
from repro.dtp.analysis import DAEMON_BOUND_TICKS, network_bound_ticks
from repro.dtp.daemon import DtpDaemon
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.ethernet.frames import MTU_FRAME
from repro.ethernet.traffic import SaturatedTraffic
from repro.network.topology import fat_tree, paper_testbed
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


class TestDatacenterScenario:
    """The paper's end-to-end story on the Figure 5 testbed."""

    @pytest.fixture(scope="class")
    def loaded_testbed(self):
        sim = Simulator()
        streams = RandomStreams(77)
        topo = paper_testbed()
        net = DtpNetwork(sim, topo, streams)
        net.start()
        net.install_traffic(
            lambda i, d: SaturatedTraffic(MTU_FRAME, phase=i * 13),
            start_tick=20_000,
        )
        sim.run_until(units.MS)
        return sim, topo, net

    def test_every_link_pair_within_direct_bound(self, loaded_testbed):
        sim, topo, net = loaded_testbed
        worst = 0
        t = sim.now
        for _ in range(100):
            t += 20 * units.US
            sim.run_until(t)
            for edge in topo.edges:
                worst = max(worst, abs(net.pair_offset(edge.a, edge.b, t)))
        assert worst <= 4

    def test_leaf_to_leaf_within_network_bound(self, loaded_testbed):
        sim, topo, net = loaded_testbed
        bound = network_bound_ticks(topo.diameter_hops())
        worst = 0
        t = sim.now
        for _ in range(60):
            t += 20 * units.US
            sim.run_until(t)
            worst = max(worst, net.max_abs_offset(topo.hosts(), t))
        assert worst <= bound

    def test_beacons_not_starved_by_saturation(self, loaded_testbed):
        sim, topo, net = loaded_testbed
        for port in net.ports.values():
            beacons = port.stats.sent.get("BEACON", 0)
            # Saturated MTU links still deliver a beacon every ~193 ticks;
            # after >1 ms each port must have sent hundreds.
            assert beacons > 300


class TestEndToEndPrecision:
    def test_daemon_to_daemon_within_4td_plus_8t(self):
        """The abstract's end-to-end claim: 4TD + 8T covers two daemons
        reading NIC counters across a synchronized network (4TD for the
        network, 8T for daemon access; spikes are excluded by the paper's
        'usually better than' phrasing — we check the 99th percentile)."""
        sim = Simulator()
        streams = RandomStreams(88)
        topo = paper_testbed()
        net = DtpNetwork(
            sim, topo, streams,
            config=DtpPortConfig(beacon_interval_ticks=1200),
        )
        net.start()
        sim.run_until(units.MS)
        daemons = {}
        for index, name in enumerate(("S4", "S11")):
            tsc = TscCounter(skew=ConstantSkew(4.0 * index - 6.0), name=f"tsc-{name}")
            daemons[name] = DtpDaemon(
                sim, net.devices[name], tsc,
                streams.stream(f"daemon/{name}"),
                sample_interval_fs=500 * units.US, smoothing_window=4,
            )
            daemons[name].start()
        sim.run_until(4 * units.MS)
        diameter = topo.hop_distance("S4", "S11")
        bound = network_bound_ticks(diameter) + 2 * DAEMON_BOUND_TICKS
        errors = []
        t = sim.now
        for _ in range(300):
            t += 503 * units.US
            sim.run_until(t)
            estimate_a = daemons["S4"].get_dtp_counter(t)
            estimate_b = daemons["S11"].get_dtp_counter(t)
            errors.append(abs(estimate_a - estimate_b))
        errors.sort()
        p99 = errors[int(len(errors) * 0.99)]
        assert p99 <= bound

    def test_fat_tree_datacenter_bound_153_6ns(self):
        """The headline: any two servers in a 6-hop fat-tree within 153.6 ns."""
        sim = Simulator()
        streams = RandomStreams(99)
        topo = fat_tree(4, hosts_per_edge_switch=1)
        net = DtpNetwork(sim, topo, streams)
        net.start()
        sim.run_until(units.MS)
        worst = 0
        t = sim.now
        for _ in range(40):
            t += 25 * units.US
            sim.run_until(t)
            worst = max(worst, net.max_abs_offset(topo.hosts(), t))
        assert worst * 6.4 <= 153.6


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        def run(seed):
            sim = Simulator()
            net = DtpNetwork(sim, paper_testbed(), RandomStreams(seed))
            net.start()
            sim.run_until(2 * units.MS)
            return [net.counter_of(n) for n in sorted(net.devices)]

        assert run(5) == run(5)

    def test_different_seeds_differ(self):
        def run(seed):
            sim = Simulator()
            net = DtpNetwork(sim, paper_testbed(), RandomStreams(seed))
            net.start()
            sim.run_until(2 * units.MS)
            return [net.counter_of(n) for n in sorted(net.devices)]

        assert run(5) != run(6)
