"""Tests for 802.3x PAUSE flow control in the packet network."""

import pytest

from repro.network.packet import PacketNetwork
from repro.network.topology import star


def oversubscribe(net, sim, packets=120):
    """Two senders flood the switch->h0 egress."""
    delivered = []
    net.host("h0").register_handler("bulk", lambda p, f, l: delivered.append(p))
    for _ in range(packets):
        net.send("h1", "h0", 1500, "bulk")
        net.send("h2", "h0", 1500, "bulk")
    sim.run()
    return delivered


class TestPause:
    def test_without_pfc_overload_drops(self, sim):
        net = PacketNetwork(sim, star(3), queue_capacity_bytes=32 * 1024)
        delivered = oversubscribe(net, sim)
        assert len(delivered) < 240  # tail drops happened

    def test_with_pfc_nothing_drops(self, sim):
        net = PacketNetwork(sim, star(3), queue_capacity_bytes=32 * 1024)
        switch = net.switches["sw0"]
        switch.interfaces["h0"].enable_flow_control(
            high_bytes=16 * 1024, low_bytes=8 * 1024
        )
        # Hosts hold the backlog in memory once paused (they backpressure
        # the application rather than drop).
        for host in ("h1", "h2"):
            net.host(host).interfaces["sw0"].queue.capacity_bytes = 10**7
        delivered = oversubscribe(net, sim)
        assert len(delivered) == 240  # PAUSE pushed backlog upstream

    def test_pause_frames_counted(self, sim):
        net = PacketNetwork(sim, star(3), queue_capacity_bytes=32 * 1024)
        egress = net.switches["sw0"].interfaces["h0"]
        egress.enable_flow_control(high_bytes=16 * 1024, low_bytes=8 * 1024)
        oversubscribe(net, sim)
        assert egress.pauses_sent > 0
        host_iface = net.host("h1").interfaces["sw0"]
        assert host_iface.pauses_received > 0

    def test_pfc_increases_sender_side_delay(self):
        """PFC trades drops for head-of-line blocking: delivery of the
        whole burst completes, but the tail waits upstream."""
        from repro.sim.engine import Simulator

        completion = {}
        for pfc in (False, True):
            sim = Simulator()
            net = PacketNetwork(sim, star(3), queue_capacity_bytes=32 * 1024)
            if pfc:
                net.switches["sw0"].interfaces["h0"].enable_flow_control(
                    high_bytes=16 * 1024, low_bytes=8 * 1024
                )
            last = [0]
            net.host("h0").register_handler(
                "bulk", lambda p, f, l: last.__setitem__(0, l)
            )
            for _ in range(60):
                net.send("h1", "h0", 1500, "bulk")
                net.send("h2", "h0", 1500, "bulk")
            sim.run()
            completion[pfc] = last[0]
        assert completion[True] >= completion[False]

    def test_invalid_watermarks_rejected(self, sim):
        net = PacketNetwork(sim, star(2))
        iface = net.host("h0").interfaces["sw0"]
        with pytest.raises(ValueError):
            iface.enable_flow_control(high_bytes=1000, low_bytes=1000)

    def test_resume_restarts_transmission(self, sim):
        net = PacketNetwork(sim, star(2))
        iface = net.host("h0").interfaces["sw0"]
        iface.set_paused(True)
        net.send("h0", "h1", 500, "x")
        sim.run()
        assert net.host("h1").packets_received == 0
        iface.set_paused(False)
        sim.run()
        assert net.host("h1").packets_received == 1
