"""The two-faced clock assumption (paper Section 3.1) is load-bearing.

A Byzantine port that reports different counters to different peers breaks
DTP in two distinct ways, depending on the lie's size:

* a lie *inside* the ±8 reject window compounds through max() into a
  **rate attack**: the whole network's counter races ahead of every real
  oscillator (pairwise offsets deceptively stay small);
* a lie *outside* the window permanently **splits** the victim from the
  honest side (and the honest nodes end up rejecting the victim's — not
  the liar's — beacons, so naive fault detection blames the wrong node).

Both justify the paper's assumption: DTP is not Byzantine-tolerant and
does not claim to be.
"""

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.faults import make_two_faced
from repro.dtp.network import DtpNetwork
from repro.network.topology import chain
from repro.sim import units
from repro.sim.randomness import RandomStreams


def build(sim, lie_ticks):
    net = DtpNetwork(
        sim, chain(3), RandomStreams(77),
        skews={name: ConstantSkew(0.0) for name in ("n0", "n1", "n2")},
    )
    if lie_ticks:
        make_two_faced(net, "n1", "n2", lie_ticks)
    net.start()
    return net


def nominal_ticks(t_fs):
    return t_fs // units.TICK_10G_FS


def test_honest_network_tracks_real_time(sim):
    net = build(sim, lie_ticks=0)
    sim.run_until(3 * units.MS)
    excess = net.counter_of("n0") - nominal_ticks(sim.now)
    assert abs(excess) <= 2
    worst = 0
    t = sim.now
    for _ in range(100):
        t += 20 * units.US
        sim.run_until(t)
        worst = max(worst, abs(net.pair_offset("n0", "n2", t)))
    assert worst <= 8  # two hops


def test_small_lie_becomes_a_rate_attack(sim):
    """A 6-tick lie ratchets the global counter far beyond any oscillator:
    max() re-absorbs the inflated counter every beacon round-trip."""
    net = build(sim, lie_ticks=6)
    sim.run_until(3 * units.MS)
    excess = net.counter_of("n0") - nominal_ticks(sim.now)
    assert excess > 1000  # no real clock could have produced this
    # ...while pairwise offsets look perfectly healthy: the attack is
    # invisible to DTP's own precision metric.
    assert abs(net.pair_offset("n0", "n2")) <= 8


def test_large_lie_splits_the_network(sim):
    """A 1000-tick lie lands once via BEACON_JOIN and never heals: the
    victim sits 1000 ticks ahead of the honest side forever."""
    net = build(sim, lie_ticks=1000)
    sim.run_until(3 * units.MS)
    split = abs(net.pair_offset("n0", "n2"))
    assert split > 900  # 4TD (= 8) is long gone
    # The honest middle node rejects the *victim's* beacons — fault
    # detection sees the wrong culprit.
    honest_port = net.ports[("n1", "n2")]
    assert honest_port.stats.rejected_out_of_range > 100
