"""Unit tests for topologies."""

import pytest

from repro.network.link import Cable
from repro.network.topology import (
    Topology,
    TopologyError,
    chain,
    fat_tree,
    paper_testbed,
    star,
    to_networkx,
    two_level_tree,
)


class TestTopologyBasics:
    def test_add_nodes_and_links(self):
        topo = Topology()
        topo.add_host("a")
        topo.add_switch("s")
        topo.add_link("a", "s")
        assert topo.neighbors("a") == ["s"]
        assert topo.hosts() == ["a"]
        assert topo.switches() == ["s"]

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_host("a")
        with pytest.raises(TopologyError):
            topo.add_host("a")

    def test_unknown_kind_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_node("x", "router")

    def test_self_loop_rejected(self):
        topo = Topology()
        topo.add_host("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "a")

    def test_link_to_unknown_node_rejected(self):
        topo = Topology()
        topo.add_host("a")
        with pytest.raises(TopologyError):
            topo.add_link("a", "ghost")

    def test_hop_distance(self):
        topo = chain(4)
        assert topo.hop_distance("n0", "n3") == 3
        assert topo.hop_distance("n0", "n0") == 0

    def test_hop_distance_disconnected_raises(self):
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        with pytest.raises(TopologyError):
            topo.hop_distance("a", "b")

    def test_shortest_path(self):
        topo = star(3)
        assert topo.shortest_path("h0", "h1") == ["h0", "sw0", "h1"]

    def test_is_connected(self):
        assert chain(3).is_connected()
        disconnected = Topology()
        disconnected.add_host("a")
        disconnected.add_host("b")
        assert not disconnected.is_connected()


class TestBuilders:
    def test_chain(self):
        topo = chain(5)
        assert len(topo.nodes) == 5
        assert len(topo.edges) == 4
        assert topo.diameter_hops() == 4

    def test_chain_requires_two(self):
        with pytest.raises(TopologyError):
            chain(1)

    def test_star(self):
        topo = star(6)
        assert len(topo.hosts()) == 6
        assert topo.diameter_hops() == 2

    def test_two_level_tree(self):
        topo = two_level_tree(3, 2)
        assert len(topo.switches()) == 4
        assert len(topo.hosts()) == 6
        assert topo.diameter_hops() == 4

    def test_paper_testbed_matches_figure5(self):
        topo = paper_testbed()
        assert sorted(topo.switches()) == ["S0", "S1", "S2", "S3"]
        assert len(topo.hosts()) == 8
        # Max distance between leaves under different switches: 4 hops.
        assert topo.hop_distance("S4", "S11") == 4
        assert topo.diameter_hops() == 4

    def test_fat_tree_k4_diameter_six(self):
        topo = fat_tree(4)
        assert topo.diameter_hops() == 6
        assert len(topo.hosts()) == 16
        # 4 core + 4 pods * (2 agg + 2 edge).
        assert len(topo.switches()) == 20

    def test_fat_tree_host_count_scales(self):
        topo = fat_tree(4, hosts_per_edge_switch=1)
        assert len(topo.hosts()) == 8

    def test_fat_tree_rejects_odd_k(self):
        with pytest.raises(TopologyError):
            fat_tree(3)

    def test_fat_tree_connected(self):
        assert fat_tree(4).is_connected()

    def test_custom_cable_used(self):
        cable = Cable(length_m=3.0)
        topo = chain(2, cable)
        assert topo.edges[0].cable.length_m == 3.0

    def test_networkx_export(self):
        graph = to_networkx(paper_testbed())
        assert graph.number_of_nodes() == 12
        assert graph.number_of_edges() == 11
        assert graph.nodes["S0"]["kind"] == "switch"
