"""The re-host is byte-identical: wrapping a controller changes nothing.

Three equivalence pins, one per re-hosted controller:

1. :class:`PiServoDiscipline` emits exactly the action sequence of the
   bare :class:`PiServo` on any input stream (it *wraps* the servo);
2. :class:`DtpDaemon`'s interpolation — now delegated to
   :mod:`repro.discipline.interp` — reproduces the pre-refactor math
   bit-for-bit (same float op order);
3. attaching a :class:`RaceObserver` to any of the nine builtin
   scenarios leaves the scenario's own metrics digest untouched — the
   observer only reads network state and draws from new ``racelab/*``
   streams, so by the name-keyed stream contract the simulated network
   is byte-identical whether or not a race is watching.
"""

import random

import pytest

from repro.discipline.base import ACTION_STEP, Observation, build_discipline
from repro.discipline.classic import DaemonDiscipline, PiServoDiscipline
from repro.discipline.interp import endpoint_rate, extrapolate, windowed_anchor
from repro.discipline.racelab import run_race_scenario
from repro.faultlab.campaign import metrics_digest, run_scenario
from repro.faultlab.scenarios import BUILTIN_SCENARIOS
from repro.ptp.servo import PiServo
from repro.sim import units


# ----------------------------------------------------------------------
# 1. PiServoDiscipline == PiServo
# ----------------------------------------------------------------------
def random_offset_stream(seed, n=500):
    rng = random.Random(seed)
    t = 0
    for _ in range(n):
        interval = rng.randint(1, 50 * units.MS)
        t += interval
        magnitude = 10 ** rng.uniform(0, 13)  # 1 fs .. 10 ms
        yield t, rng.choice((-1.0, 1.0)) * magnitude, interval


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_pi_discipline_matches_bare_servo(seed):
    bare = PiServo()
    disc = PiServoDiscipline()
    for t, offset, interval in random_offset_stream(seed):
        expected = bare.sample(offset, interval)
        action = disc.observe(
            Observation(time_fs=t, offset_fs=offset, interval_fs=interval)
        )
        if expected.kind == "step":
            assert action.kind == "step"
            assert action.step_fs == expected.value
        else:
            assert action.kind == "slew"
            assert action.freq_adj == expected.value
    assert disc.servo.steps == bare.steps
    assert disc.servo.slews == bare.slews
    assert disc.servo._integral == bare._integral


def test_pi_discipline_wraps_injected_servo():
    """The PTP slave / NTP client path: the discipline must drive the
    caller's own servo object, not a copy — counters included."""
    servo = PiServo(kp=0.3, ki=0.05)
    disc = PiServoDiscipline(servo=servo)
    assert disc.servo is servo
    disc.observe(Observation(time_fs=1, offset_fs=500.0, interval_fs=units.MS))
    assert servo.slews + servo.steps == 1


# ----------------------------------------------------------------------
# 2. interp primitives == the daemon's pre-refactor math
# ----------------------------------------------------------------------
def _old_daemon_estimate(samples, window, x):
    """The DtpDaemon formulas exactly as they read before extraction."""
    first_x, first_y = samples[0]
    last_x, last_y = samples[-1]
    dx = last_x - first_x
    ratio = None if dx <= 0 else (last_y - first_y) / dx
    if ratio is None:
        ratio = 0.0
    window = min(window, len(samples))
    recent = samples[-window:]
    anchor_x = sum(s[0] for s in recent) / window
    anchor_y = sum(s[1] for s in recent) / window
    return anchor_y + (x - anchor_x) * ratio


@pytest.mark.parametrize("seed", [2, 3])
@pytest.mark.parametrize("window", [1, 4, 8])
def test_interp_matches_verbatim_daemon_math(seed, window):
    rng = random.Random(seed)
    samples = []
    x = 0
    for _ in range(40):
        x += rng.randint(1, 10**9)
        samples.append((x, rng.uniform(-1e9, 1e9)))
        query = x + rng.randint(0, 10**9)
        rate = endpoint_rate(
            samples[0][0], samples[0][1], samples[-1][0], samples[-1][1]
        )
        anchor_x, anchor_y = windowed_anchor(
            [s[0] for s in samples], [s[1] for s in samples], window
        )
        got = extrapolate(anchor_x, anchor_y, rate if rate is not None else 0.0, query)
        # `==`, not isclose: identical float op order is the contract.
        assert got == _old_daemon_estimate(samples, window, query)


def test_daemon_discipline_steps_to_extrapolation():
    disc = DaemonDiscipline(smoothing_window=2)
    a1 = disc.observe(Observation(time_fs=10, offset_fs=100.0, interval_fs=10))
    assert a1.kind == ACTION_STEP and a1.step_fs == -100.0
    a2 = disc.observe(Observation(time_fs=20, offset_fs=200.0, interval_fs=10))
    expected = _old_daemon_estimate([(10, 100.0), (20, 200.0)], 2, 20)
    assert a2.step_fs == -expected


# ----------------------------------------------------------------------
# 3. the race observer never perturbs the scenario
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(BUILTIN_SCENARIOS))
def test_race_observer_leaves_scenario_digest_untouched(name):
    spec = BUILTIN_SCENARIOS[name](True)
    seed = 99
    plain = run_scenario(dict(spec), seed=seed)
    raced = run_race_scenario(dict(spec), "pi", seed=seed)
    assert raced["scenario_digest"] == metrics_digest(plain)
    assert raced["scenario_metrics"] == plain
    # And the race itself did something on top of the untouched scenario.
    assert raced["race"]["observations"] > 0


def test_build_discipline_all_kinds_register():
    for kind in ("pi", "daemon", "skewless", "congestion"):
        disc = build_discipline(kind)
        assert disc.kind == kind
