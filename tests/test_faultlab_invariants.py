"""The runtime invariant checker: clean baselines, flagged faults, API."""

import pytest

from repro.dtp.network import DtpNetwork
from repro.faultlab import (
    INVARIANT_MONOTONIC,
    INVARIANT_PAIR_BOUND,
    FaultContext,
    InvariantChecker,
    InvariantViolation,
    Partition,
    TwoFacedNode,
)
from repro.network.topology import chain
from repro.sim import units


def _net(sim, streams, hosts=3):
    return DtpNetwork(sim, chain(hosts), streams)


def _ctx(net, checker):
    return FaultContext(network=net, streams=net.streams, checker=checker)


def test_fault_free_baseline_is_clean(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net)
    net.start()
    sim.run_until(units.MS)
    assert checker.checks_run > 500
    assert checker.pairs_checked > 0
    assert checker.total_violations == 0
    assert checker.counts == {}


def test_two_faced_node_is_flagged(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net)
    TwoFacedNode("n0", "n1", lie_ticks=7, at_fs=200 * units.US).arm(
        _ctx(net, checker)
    )
    net.start()
    sim.run_until(1500 * units.US)
    assert checker.counts.get(INVARIANT_PAIR_BOUND, 0) > 0
    assert any(
        v.invariant == INVARIANT_PAIR_BOUND for v in checker.violations
    )


def test_raise_on_violation_carries_full_context(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net, raise_on_violation=True)
    TwoFacedNode("n0", "n1", lie_ticks=7, at_fs=200 * units.US).arm(
        _ctx(net, checker)
    )
    net.start()
    with pytest.raises(InvariantViolation) as excinfo:
        sim.run_until(1500 * units.US)
    exc = excinfo.value
    assert exc.violation.invariant == INVARIANT_PAIR_BOUND
    assert set(exc.context) >= {
        "time_fs", "counters", "port_states", "quarantined", "healing",
    }
    assert set(exc.context["counters"]) == {"n0", "n1", "n2"}


def test_counter_rollback_trips_monotonicity(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net)
    net.start()

    def rollback():
        net.devices["n1"].gc.set_counter(sim.now, 100)

    sim.schedule_at(600 * units.US, rollback)
    sim.run_until(700 * units.US)
    assert checker.counts.get(INVARIANT_MONOTONIC, 0) >= 1


def test_notified_reset_is_not_a_violation(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net)
    net.start()

    def legitimate_reset():
        checker.quarantine(["n1"], "maintenance")
        net.devices["n1"].gc.set_counter(sim.now, 100)
        checker.notify_counter_reset("n1")

    sim.schedule_at(600 * units.US, legitimate_reset)
    sim.run_until(700 * units.US)
    assert checker.counts.get(INVARIANT_MONOTONIC, 0) == 0
    assert checker.total_violations == 0


def test_unknown_nodes_are_rejected(sim, streams):
    checker = InvariantChecker(_net(sim, streams))
    with pytest.raises(KeyError):
        checker.quarantine(["nope"], "x")
    with pytest.raises(KeyError):
        checker.release(["nope"], "x")
    with pytest.raises(KeyError):
        checker.notify_counter_reset("nope")


def test_grace_window_defers_fresh_pairs(sim, streams):
    net = _net(sim, streams, hosts=2)
    checker = InvariantChecker(net)
    assert checker.worst_checkable_offset() is None  # nothing synced yet
    net.start()
    sim.run_until(20 * units.US)  # synced, but younger than grace_fs
    assert checker.checkable_pairs() == []
    ungraced = checker.checkable_pairs(enforce_grace=False)
    assert [(a, b) for a, b, _ in ungraced] == [("n0", "n1")]
    sim.run_until(200 * units.US)
    assert len(checker.checkable_pairs()) == 1


def test_pair_bound_scales_with_hops(sim, streams):
    net = _net(sim, streams, hosts=4)
    checker = InvariantChecker(net)
    net.start()
    sim.run_until(200 * units.US)
    bounds = {
        (a, b): bound for a, b, bound in checker.checkable_pairs()
    }
    increment = net.devices["n0"].counter_increment
    assert bounds[("n0", "n1")] == 4 * increment
    assert bounds[("n0", "n3")] == 12 * increment  # 4T * 3 hops


def test_partition_heal_records_recovery(sim, streams):
    net = _net(sim, streams, hosts=4)
    checker = InvariantChecker(net)
    Partition(
        "n1", "n2", down_at_fs=300 * units.US, up_at_fs=700 * units.US
    ).arm(_ctx(net, checker))
    net.start()
    sim.run_until(2 * units.MS)
    assert checker.total_violations == 0
    assert "partition" in checker.recovery_fs
    assert len(checker.recovery_fs["partition"]) == 2  # both endpoints
    assert checker.healing_nodes == []
    assert len(checker.reconnect_recoveries) >= 1


def test_interval_validation(sim, streams):
    net = _net(sim, streams)
    with pytest.raises(ValueError, match="interval_fs"):
        InvariantChecker(net, interval_fs=0)


def test_stop_halts_the_checker(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net)
    net.start()
    sim.run_until(100 * units.US)
    seen = checker.checks_run
    checker.stop()
    sim.run_until(500 * units.US)
    assert checker.checks_run == seen
