"""The sharded backend's determinism contract and partitioner rules.

The conservative parallel backend's one promise is total invisibility:
same seed, serial vs ``--backend sharded --shards N``, byte-identical on
the result dict, the telemetry digests, and every artifact file.  These
tests hammer that promise across all nine builtin scenarios, both
transports, and the fabric-scale scenarios, then pin the partitioner's
packing, fault-pin, and error behavior.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.faultlab.campaign import CampaignError, build_fault, run_scenario
from repro.faultlab.scenarios import (
    BUILTIN_SCENARIOS,
    FABRIC_SCENARIOS,
    builtin_specs,
)
from repro.network.topology import chain
from repro.shard import build_plan, resolve_shards, run_sharded_scenario
from repro.shard.partition import _atoms
from repro.shard.runner import default_margin_fs
from repro.sim.engine import MacroTickSimulator


def canon(result) -> str:
    return json.dumps(result, sort_keys=True)


def run_both(spec, shards=2, transport="inline", seed=0):
    serial = run_scenario(dict(spec), seed=seed)
    sharded = run_scenario(
        dict(spec),
        seed=seed,
        backend="sharded",
        shards=shards,
        shard_transport=transport,
    )
    return serial, sharded


def tree(root: Path):
    """{relative path: bytes} for every file under ``root``."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


# ----------------------------------------------------------------------
# Byte-identity: the whole point
# ----------------------------------------------------------------------
class TestByteIdentity:
    @pytest.mark.parametrize("name", list(BUILTIN_SCENARIOS))
    def test_every_builtin_identical_at_two_shards(self, name):
        spec = builtin_specs([name], quick=True)[0]
        # link-flap's fault pins merge all but one node into one atom;
        # two shards is the most its topology can be cut into — which is
        # exactly what the parametrization exercises everywhere.
        serial, sharded = run_both(spec, shards=2)
        assert canon(serial) == canon(sharded)

    def test_telemetry_digests_identical(self, tmp_path):
        spec = builtin_specs(["partition-heal"], quick=True)[0]
        dirs = {}
        for mode in ("serial", "sharded"):
            base = tmp_path / mode
            kwargs = dict(
                seed=0,
                trace_dir=str(base / "trace"),
                metrics_dir=str(base / "metrics"),
                flight_dir=str(base / "flight"),
            )
            if mode == "sharded":
                kwargs.update(
                    backend="sharded", shards=2, shard_transport="inline"
                )
            dirs[mode] = (run_scenario(dict(spec), **kwargs), base)
        serial_result, serial_base = dirs["serial"]
        sharded_result, sharded_base = dirs["sharded"]
        assert canon(serial_result) == canon(sharded_result)
        assert "telemetry" in serial_result  # digests actually compared
        assert tree(serial_base) == tree(sharded_base)

    def test_one_shard_is_identical_too(self):
        spec = builtin_specs(["baseline"], quick=True)[0]
        serial, sharded = run_both(spec, shards=1)
        assert canon(serial) == canon(sharded)

    def test_process_transport_identical_with_artifacts(self, tmp_path):
        spec = builtin_specs(["baseline"], quick=True)[0]
        results = {}
        for mode in ("serial", "process"):
            base = tmp_path / mode
            kwargs = dict(
                seed=0,
                trace_dir=str(base / "trace"),
                metrics_dir=str(base / "metrics"),
                flight_dir=str(base / "flight"),
            )
            if mode == "process":
                kwargs.update(
                    backend="sharded", shards=2, shard_transport="process"
                )
            results[mode] = (run_scenario(dict(spec), **kwargs), base)
        assert canon(results["serial"][0]) == canon(results["process"][0])
        assert tree(results["serial"][1]) == tree(results["process"][1])

    def test_clos_fabric_identical(self):
        spec = builtin_specs(["clos-fabric"], quick=True)[0]
        serial, sharded = run_both(spec, shards=4)
        assert canon(serial) == canon(sharded)

    def test_seed_changes_both_the_same_way(self):
        spec = builtin_specs(["ber-burst"], quick=True)[0]
        serial, sharded = run_both(spec, seed=7)
        assert canon(serial) == canon(sharded)
        assert serial["seed"] == 7


# ----------------------------------------------------------------------
# Partitioner
# ----------------------------------------------------------------------
class TestPartitioner:
    def test_chain_cuts_in_the_middle(self):
        plan = build_plan(chain(4), [], 2, default_margin_fs())
        assert plan.owned_nodes == (("n0", "n1"), ("n2", "n3"))
        assert {c.src_port for c in plan.channels} == {"n1->n2", "n2->n1"}
        for channel in plan.channels:
            assert channel.lookahead_fs == channel.delay_fs - plan.margin_fs
            assert channel.lookahead_fs > 0

    def test_node_crash_pins_node_and_neighbors(self):
        topology = chain(4)
        fault = build_fault(
            {
                "kind": "node-crash",
                "node": "n1",
                "at_fs": 1,
                "restart_after_fs": 1,
            },
            0,
        )
        atoms = _atoms(topology, [fault])
        assert sorted(sorted(a) for a in atoms) == [["n0", "n1", "n2"], ["n3"]]
        plan = build_plan(topology, [fault], 2, default_margin_fs())
        shard_of = plan.node_shard
        assert shard_of["n0"] == shard_of["n1"] == shard_of["n2"]
        assert shard_of["n3"] != shard_of["n1"]

    def test_more_shards_than_atoms_rejected(self):
        with pytest.raises(CampaignError, match="cut partitions"):
            build_plan(chain(3), [], 4, default_margin_fs())

    def test_cut_delay_must_exceed_margin(self):
        topology = chain(4)
        delay = topology.edges[0].cable.forward_delay_fs()
        with pytest.raises(CampaignError, match="lookahead margin"):
            build_plan(topology, [], 2, margin_fs=delay)

    def test_resolve_shards_defaults_to_jobs_capped_by_atoms(self, monkeypatch):
        import repro.shard.runner as runner

        spec = builtin_specs(["baseline"], quick=True)[0]  # 4 atoms
        monkeypatch.setattr(runner, "default_jobs", lambda: 2)
        assert resolve_shards(spec) == 2
        monkeypatch.setattr(runner, "default_jobs", lambda: 64)
        assert resolve_shards(spec) == 4
        assert resolve_shards(spec, shards=3) == 3  # explicit passthrough


# ----------------------------------------------------------------------
# Feature gates: what the sharded backend must refuse
# ----------------------------------------------------------------------
class TestFeatureGates:
    def spec(self):
        return builtin_specs(["baseline"], quick=True)[0]

    def test_observers_rejected(self):
        with pytest.raises(CampaignError, match="observers"):
            run_sharded_scenario(self.spec(), observers=[lambda: None])

    def test_profile_rejected(self):
        with pytest.raises(CampaignError, match="profile"):
            run_sharded_scenario(self.spec(), profile_dispatch=True)

    def test_custom_sim_factory_rejected(self):
        with pytest.raises(CampaignError, match="sim_factory"):
            run_sharded_scenario(self.spec(), sim_factory=MacroTickSimulator)

    def test_raise_on_violation_rejected(self):
        spec = self.spec()
        spec["checker"] = {"raise_on_violation": True}
        with pytest.raises(CampaignError, match="raise_on_violation"):
            run_sharded_scenario(spec)

    def test_unknown_transport_rejected(self):
        with pytest.raises(CampaignError, match="transport"):
            run_sharded_scenario(self.spec(), transport="carrier-pigeon")

    def test_too_many_shards_rejected_with_clear_error(self):
        with pytest.raises(CampaignError, match="rerun with a smaller"):
            run_sharded_scenario(self.spec(), shards=64)

    def test_live_handle_builder_rejects_sharded(self):
        from repro.scenarios import build

        with pytest.raises(ValueError, match="sharded"):
            build("rack", backend="sharded")

    def test_fig6_rejects_sharded(self):
        from repro.experiments.fig6_dtp import Fig6DtpConfig, run_fig6_dtp

        with pytest.raises(ValueError, match="sharded"):
            run_fig6_dtp(Fig6DtpConfig(), backend="sharded")


# ----------------------------------------------------------------------
# Fabric scenarios and CLI wiring
# ----------------------------------------------------------------------
class TestFabricScenarios:
    def test_resolvable_by_explicit_name_only(self):
        assert not set(FABRIC_SCENARIOS) & set(BUILTIN_SCENARIOS)
        default = {spec["name"] for spec in builtin_specs(quick=True)}
        assert default == set(BUILTIN_SCENARIOS)
        spec = builtin_specs(["fat-tree-k8"], quick=True)[0]
        assert spec["topology"]["kind"] == "fat-tree"

    def test_fat_tree_k8_shape(self):
        from repro.faultlab.campaign import build_topology

        spec = builtin_specs(["fat-tree-k8"], quick=True)[0]
        topology = build_topology(spec["topology"])
        assert len(topology.nodes) == 336
        assert 2 * len(topology.edges) == 1024  # port directions
        assert topology.diameter_hops() == 6

    def test_cli_stdout_identical_serial_vs_sharded(self, capsys):
        from repro.faultlab.cli import main as faultlab_main

        assert faultlab_main(["--quick", "baseline", "--json"]) == 0
        serial_out = capsys.readouterr().out
        assert (
            faultlab_main(
                [
                    "--quick",
                    "baseline",
                    "--json",
                    "--backend",
                    "sharded",
                    "--shards",
                    "2",
                    "--shard-transport",
                    "inline",
                ]
            )
            == 0
        )
        sharded_out = capsys.readouterr().out
        assert serial_out == sharded_out

    def test_stats_out_reports_rounds_and_events(self):
        stats = {}
        spec = builtin_specs(["baseline"], quick=True)[0]
        result = run_sharded_scenario(
            spec, shards=2, transport="inline", stats_out=stats
        )
        assert stats["shards"] == 2
        assert stats["rounds"] > 0
        assert stats["events"] > 0
        assert stats["wall_ns"] > 0
        assert "rounds" not in result  # stats never leak into the result


@pytest.mark.skipif(
    os.environ.get("RUN_SHARD_SLOW") != "1",
    reason="set RUN_SHARD_SLOW=1 for the fat-tree identity run (slow)",
)
def test_fat_tree_k8_identical_on_four_shards():
    spec = builtin_specs(["fat-tree-k8"], quick=True)[0]
    serial, sharded = run_both(spec, shards=4, transport="process")
    assert canon(serial) == canon(sharded)
