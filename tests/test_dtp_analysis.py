"""Unit tests for the Section 3.3 closed-form bounds."""

import pytest

from repro.dtp import analysis
from repro.phy.specs import PHY_100G


def test_direct_bound_is_25_6_ns():
    assert analysis.direct_bound_ns() == pytest.approx(25.6)


def test_network_bound_six_hops_is_153_6_ns():
    """The paper's headline: 153.6 ns across a six-hop datacenter."""
    assert analysis.network_bound_ns(6) == pytest.approx(153.6)


def test_network_bound_ticks_scale_linearly():
    assert analysis.network_bound_ticks(1) == 4
    assert analysis.network_bound_ticks(3) == 12


def test_negative_diameter_rejected():
    with pytest.raises(ValueError):
        analysis.network_bound_ticks(-1)


def test_end_to_end_bound_adds_8t():
    """Abstract: end-to-end precision better than 4TD + 8T."""
    assert analysis.end_to_end_bound_ns(6) == pytest.approx(153.6 + 51.2)


def test_max_beacon_interval_about_5000_ticks():
    """Section 3.3: resync within 32 us ~ 5000 ticks keeps drift under 1."""
    interval = analysis.max_beacon_interval_ticks()
    assert 4900 <= interval <= 5100


def test_safe_beacon_interval_about_4000_ticks():
    """Paper: 25 us (~4000 ticks) after subtracting 5 us of cable latency."""
    interval = analysis.safe_beacon_interval_ticks()
    assert 4100 <= interval <= 4300


def test_drift_over_beacon_interval_under_two_ticks():
    drift = analysis.drift_ticks_over(5000, ppm_gap=200.0)
    assert drift <= 2.0 + 1e-9


def test_owd_error_alpha3_never_overestimates():
    assert analysis.OwdErrorAnalysis(alpha=3).never_overestimates()


def test_owd_error_alpha0_overestimates():
    assert not analysis.OwdErrorAnalysis(alpha=0).never_overestimates()


def test_owd_error_measured_range():
    owd = analysis.OwdErrorAnalysis(alpha=3)
    assert owd.measured_min_minus_d == -2
    assert owd.measured_max_minus_d == 0


def test_bound_scales_with_phy_speed():
    # At 100G a tick is 0.64 ns, so the same 4-tick bound is 2.56 ns.
    assert analysis.direct_bound_ns(PHY_100G) == pytest.approx(2.56)
