"""The faultlab fault-model library: validation, determinism, mechanics."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.network import DtpNetwork
from repro.faultlab import (
    FAULT_KINDS,
    BeaconSuppression,
    BerBurst,
    FaultContext,
    InvariantChecker,
    LinkFlap,
    NodeCrash,
    OscillatorGlitch,
    Partition,
    RunawayQuarantine,
    SteppedSkew,
    TwoFacedNode,
)
from repro.network.topology import chain
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def _net(sim, streams, hosts=3, skews=None):
    return DtpNetwork(sim, chain(hosts), streams, skews=skews)


def _ctx(net, checker=None):
    return FaultContext(network=net, streams=net.streams, checker=checker)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_link_flap_rejects_overlong_downtime():
    with pytest.raises(ValueError, match="down_for must be shorter"):
        LinkFlap("n0", "n1", down_every_fs=units.US, down_for_fs=units.US)


def test_link_flap_rejects_overlapping_jitter():
    with pytest.raises(ValueError, match="jitter"):
        LinkFlap(
            "n0", "n1",
            down_every_fs=100 * units.US,
            down_for_fs=90 * units.US,
            jitter_fs=20 * units.US,
        )


def test_partition_rejects_backwards_heal():
    with pytest.raises(ValueError, match="heal must come after the cut"):
        Partition("n0", "n1", down_at_fs=units.MS, up_at_fs=units.US)


def test_ber_burst_rejects_bad_rate():
    with pytest.raises(ValueError):
        BerBurst("n0", "n1", start_fs=0, duration_fs=units.US, ber=1.5)
    with pytest.raises(ValueError):
        BerBurst("n0", "n1", start_fs=0, duration_fs=0, ber=1e-6)


def test_double_arm_raises(sim, streams):
    net = _net(sim, streams)
    fault = Partition("n0", "n1", down_at_fs=units.US, up_at_fs=2 * units.US)
    fault.arm(_ctx(net))
    with pytest.raises(RuntimeError, match="already armed"):
        fault.arm(_ctx(net))


def test_fault_kinds_registry_is_consistent():
    for kind, cls in FAULT_KINDS.items():
        assert cls.kind == kind
    assert len(FAULT_KINDS) >= 9


# ----------------------------------------------------------------------
# Determinism: per-fault named streams (the FlappingLink fix)
# ----------------------------------------------------------------------
def _flap_down_times(with_extra_fault):
    """Down-transition times of a jittered LinkFlap, optionally with an
    unrelated fault armed first (which draws its own randomness)."""
    sim = Simulator()
    streams = RandomStreams(root_seed=99)
    net = _net(sim, streams)
    ctx = _ctx(net)
    if with_extra_fault:
        BerBurst(
            "n1", "n2", start_fs=100 * units.US,
            duration_fs=100 * units.US, ber=1e-7,
        ).arm(ctx)
    flap = LinkFlap(
        "n0", "n1",
        down_every_fs=300 * units.US,
        down_for_fs=50 * units.US,
        start_fs=200 * units.US,
        flaps=3,
        jitter_fs=40 * units.US,
    )
    flap.arm(ctx)
    times = []
    original = net.down_link

    def recording(a, b):
        if (a, b) == ("n0", "n1"):
            times.append(sim.now)
        original(a, b)

    net.down_link = recording
    net.start()
    sim.run_until(1500 * units.US)
    assert flap.flap_count == 3
    return times


def test_flap_schedule_immune_to_unrelated_faults():
    # The old dtp.faults implementation shared the global RNG stream, so
    # arming any other randomness consumer shifted the flap times.
    assert _flap_down_times(False) == _flap_down_times(True)


def test_flap_jitter_actually_randomizes():
    baseline = _flap_down_times(False)
    nominal = [
        (200 + 300 * i) * units.US for i in range(3)
    ]
    assert baseline != nominal  # jitter applied
    assert all(
        abs(t - n) <= 40 * units.US for t, n in zip(baseline, nominal)
    )


# ----------------------------------------------------------------------
# Mechanics
# ----------------------------------------------------------------------
def test_ber_burst_swaps_and_restores_injectors(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net)
    fault = BerBurst(
        "n0", "n1", start_fs=300 * units.US,
        duration_fs=300 * units.US, ber=1e-3,
    )
    fault.arm(_ctx(net, checker))
    net.start()
    sim.run_until(400 * units.US)
    assert net.ports[("n0", "n1")].ber is not None
    assert checker.quarantined_nodes == ["n0", "n1"]
    sim.run_until(1200 * units.US)
    assert net.ports[("n0", "n1")].ber is None  # restored
    assert fault.summary()["errors_injected"] > 0


def test_node_crash_resets_counter_and_recovers(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net)
    fault = NodeCrash("n2", at_fs=400 * units.US, restart_after_fs=200 * units.US)
    fault.arm(_ctx(net, checker))
    net.start()
    sim.run_until(500 * units.US)
    assert checker.quarantined_nodes == ["n2"]
    sim.run_until(1500 * units.US)
    assert fault.crashes == 1
    assert checker.total_violations == 0
    assert "node-crash" in checker.recovery_fs
    assert checker.healing_nodes == []
    assert net.all_synchronized()
    # The reboot really did reset: the counter restarted well below where
    # an uninterrupted clock would be, then max-merged back up.
    assert net.counter_of("n2") == pytest.approx(net.counter_of("n0"), abs=8)


def test_beacon_suppression_drops_only_beacons(sim, streams):
    skews = {"n0": ConstantSkew(20.0), "n1": ConstantSkew(-20.0)}
    net = _net(sim, streams, hosts=2, skews=skews)
    checker = InvariantChecker(net)
    fault = BeaconSuppression(
        "n0", "n1", start_fs=300 * units.US, duration_fs=500 * units.US
    )
    fault.arm(_ctx(net, checker))
    net.start()
    sim.run_until(1500 * units.US)
    assert fault.suppressed > 0
    assert net.ports[("n0", "n1")].tx_allow is None  # hook removed
    assert checker.total_violations == 0
    assert net.all_synchronized()


def test_two_faced_port_lies_by_the_configured_amount(sim, streams):
    net = _net(sim, streams)
    TwoFacedNode("n0", "n1", lie_ticks=7).arm(_ctx(net))
    net.start()
    sim.run_until(100 * units.US)
    t = sim.now
    device = net.devices["n0"]
    honest = device.global_counter(t)
    assert net.ports[("n0", "n1")]._tx_counter(t) == honest + 7 * device.counter_increment
    # ... but only toward the victim:
    assert net.ports[("n0", "n1")].peer is net.ports[("n1", "n0")]


def test_stepped_skew_switches_at_the_step():
    skew = SteppedSkew(ConstantSkew(10.0), step_fs=units.MS, after_ppm=80.0)
    assert skew.ppm_at(0) == 10.0
    assert skew.ppm_at(units.MS - 1) == 10.0
    assert skew.ppm_at(units.MS) == 80.0
    assert skew.ppm_at(2 * units.MS) == 80.0


def test_oscillator_glitch_reverts(sim, streams):
    net = _net(sim, streams)
    OscillatorGlitch(
        "n1", at_fs=500 * units.US, duration_fs=1200 * units.US, glitch_ppm=60.0
    ).arm(_ctx(net))
    skew = net.devices["n1"].oscillator.skew
    before = skew.ppm_at(100 * units.US)
    inside = skew.ppm_at(600 * units.US)
    after = skew.ppm_at(2 * units.MS)
    assert inside == pytest.approx(before + 60.0)
    assert after == pytest.approx(before)


def test_runaway_quarantines_but_network_follows(sim, streams):
    net = _net(sim, streams)
    checker = InvariantChecker(net)
    RunawayQuarantine("n2", at_fs=300 * units.US, runaway_ppm=500.0).arm(
        _ctx(net, checker)
    )
    net.start()
    sim.run_until(1500 * units.US)
    assert checker.quarantined_nodes == ["n2"]
    # Everyone follows the fastest clock (Section 5.4): the healthy pair
    # stays in bound even while tracking the runaway rate.
    assert checker.total_violations == 0
    assert net.all_synchronized()


def test_network_link_is_up_reflects_state(sim, streams):
    net = _net(sim, streams)
    assert not net.link_is_up("n0", "n1")  # ports start DOWN
    net.start()
    sim.run_until(100 * units.US)
    assert net.link_is_up("n0", "n1")
    net.down_link("n0", "n1")
    assert not net.link_is_up("n0", "n1")
