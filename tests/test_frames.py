"""Unit tests for Ethernet frame geometry."""

import pytest

from repro.ethernet.frames import (
    JUMBO_FRAME,
    MIN_FRAME,
    MTU_FRAME,
    FrameError,
    FrameSpec,
    beacon_interval_ticks_for,
)


def test_mtu_frame_block_count_matches_paper():
    """Paper Section 4.4: ~191 blocks for a 1522 B MTU frame."""
    assert MTU_FRAME.blocks in (191, 192)


def test_jumbo_frame_block_count_matches_paper():
    """Paper Section 4.4: ~1129 blocks for a ~9 kB jumbo frame."""
    assert JUMBO_FRAME.blocks == 1129


def test_beacon_interval_mtu_about_200():
    """Saturated MTU links leave a DTP slot every ~200 cycles."""
    assert 190 <= beacon_interval_ticks_for(MTU_FRAME) <= 200


def test_beacon_interval_jumbo_about_1200():
    assert 1100 <= beacon_interval_ticks_for(JUMBO_FRAME) <= 1200


def test_min_frame():
    assert MIN_FRAME.frame_bytes == 64
    assert MIN_FRAME.blocks == 9  # 72 wire bytes / 8


def test_undersized_frame_rejected():
    with pytest.raises(FrameError):
        FrameSpec(frame_bytes=63)


def test_slot_blocks_is_blocks_plus_idle():
    assert MTU_FRAME.slot_blocks == MTU_FRAME.blocks + 1


def test_serialization_time_mtu():
    # ~192 blocks at 6.4 ns each: ~1.23 us, consistent with the paper's
    # ~1280 ns between beacon opportunities.
    assert 1_200_000_000 < MTU_FRAME.serialization_fs() < 1_300_000_000


def test_payload_bytes():
    assert MTU_FRAME.payload_bytes() == 1504  # 1522 - 14 - 4


def test_wire_bytes_includes_preamble():
    assert MTU_FRAME.wire_bytes == 1530
