"""The checkpoint journal and the atomic-write helpers under it."""

import json
import os

import pytest

from repro.experiments.parallel import ExperimentTask
from repro.ioutil import atomic_open, atomic_write_bytes, atomic_write_text
from repro.resilience import (
    CheckpointJournal,
    JournalError,
    args_digest,
    run_supervised,
    task_key,
)


def _double(x):
    return x * 2


def _task(name="t0", x=1, seed=None):
    return ExperimentTask(name, _double, (x,), seed=seed)


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "artifact.txt")
        atomic_write_text(path, "one\n")
        atomic_write_text(path, "two\n")
        with open(path) as handle:
            assert handle.read() == "two\n"

    def test_bytes(self, tmp_path):
        path = str(tmp_path / "artifact.bin")
        atomic_write_bytes(path, b"\x00\x01")
        with open(path, "rb") as handle:
            assert handle.read() == b"\x00\x01"

    def test_creates_parent_directory(self, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "artifact.txt")
        atomic_write_text(path, "x")
        assert os.path.exists(path)

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "artifact.txt")
        atomic_write_text(path, "data")
        assert os.listdir(tmp_path) == ["artifact.txt"]

    def test_failure_preserves_previous_content(self, tmp_path):
        path = str(tmp_path / "artifact.txt")
        atomic_write_text(path, "original")
        with pytest.raises(RuntimeError):
            with atomic_open(path) as handle:
                handle.write("torn prefix that must never land")
                raise RuntimeError("crash mid-write")
        with open(path) as handle:
            assert handle.read() == "original"
        assert os.listdir(tmp_path) == ["artifact.txt"]


# ----------------------------------------------------------------------
# Task keys
# ----------------------------------------------------------------------
class TestTaskKey:
    def test_stable(self):
        assert task_key(_task()) == task_key(_task())

    def test_distinguishes_args(self):
        assert args_digest(_task(x=1)) != args_digest(_task(x=2))

    def test_distinguishes_seed_and_name(self):
        assert task_key(_task(seed=1)) != task_key(_task(seed=2))
        assert task_key(_task(name="a")) != task_key(_task(name="b"))

    def test_kwargs_participate(self):
        a = ExperimentTask("t", _double, (), {"x": 1})
        b = ExperimentTask("t", _double, (), {"x": 2})
        assert args_digest(a) != args_digest(b)


# ----------------------------------------------------------------------
# Journal round-trip, resume, corruption handling
# ----------------------------------------------------------------------
class TestJournal:
    def test_record_and_reload(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path, meta={"campaign": "x"})
        key = task_key(_task())
        journal.record(key, {"value": 42})
        reloaded = CheckpointJournal(path, meta={"campaign": "x"})
        assert reloaded.has(key)
        assert reloaded.result(key) == {"value": 42}
        assert len(reloaded) == 1

    def test_meta_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CheckpointJournal(path, meta={"campaign": "x", "seed": 1})
        with pytest.raises(JournalError, match="different campaign"):
            CheckpointJournal(path, meta={"campaign": "x", "seed": 2})

    def test_not_a_journal_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as handle:
            handle.write('{"record":"something-else"}\n')
        with pytest.raises(JournalError, match="not a resilience journal"):
            CheckpointJournal(path)

    def test_torn_final_line_dropped(self, tmp_path):
        # A journal whose last append was interrupted must still load,
        # keeping every complete entry.
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path, meta={"campaign": "x"})
        key0, key1 = task_key(_task("a")), task_key(_task("b"))
        journal.record(key0, 1)
        journal.record(key1, 2)
        with open(path) as handle:
            content = handle.read()
        with open(path, "w") as handle:
            handle.write(content[: len(content) - 9])  # tear the last entry
        reloaded = CheckpointJournal(path, meta={"campaign": "x"})
        assert reloaded.has(key0)
        assert not reloaded.has(key1)

    def test_corrupt_middle_line_raises(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path, meta={})
        journal.record(task_key(_task("a")), 1)
        with open(path) as handle:
            lines = handle.read().splitlines()
        lines.insert(1, "{garbage")
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt journal line"):
            CheckpointJournal(path)

    def test_non_json_result_rejected(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        with pytest.raises(JournalError, match="not JSON-serializable"):
            journal.record(task_key(_task()), object())

    def test_file_is_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path, meta={"campaign": "x"})
        journal.record(task_key(_task("a", seed=3)), [1, 2])
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        assert lines[0]["record"] == "resilience-journal"
        assert lines[1]["record"] == "task-result"
        assert lines[1]["name"] == "a"
        assert lines[1]["seed"] == 3


# ----------------------------------------------------------------------
# Supervisor + journal: resume semantics
# ----------------------------------------------------------------------
class TestResume:
    def _tasks(self):
        return [ExperimentTask(f"t{i}", _double, (i,), seed=i) for i in range(4)]

    def test_resume_skips_completed(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        first = run_supervised(
            self._tasks(), jobs=2, journal=CheckpointJournal(path)
        )
        second = run_supervised(
            self._tasks(), jobs=2, journal=CheckpointJournal(path)
        )
        assert second.from_journal == 4
        assert second.results == first.results == [0, 2, 4, 6]

    def test_partial_journal_resumes_rest(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path)
        tasks = self._tasks()
        journal.record(task_key(tasks[0]), 0)
        journal.record(task_key(tasks[2]), 4)
        run = run_supervised(tasks, jobs=2, journal=CheckpointJournal(path))
        assert run.from_journal == 2
        assert run.results == [0, 2, 4, 6]

    def test_changed_args_not_skipped(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        run_supervised(self._tasks(), jobs=2, journal=CheckpointJournal(path))
        changed = [
            ExperimentTask(f"t{i}", _double, (i + 10,), seed=i) for i in range(4)
        ]
        run = run_supervised(changed, jobs=2, journal=CheckpointJournal(path))
        assert run.from_journal == 0
        assert run.results == [20, 22, 24, 26]
