"""Unit and property tests for the 8b/10b codec (1 GbE PHY)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.encoding_8b10b import COMMA_CODES, Decoder8b10b, Encoder8b10b, Encoding8b10bError, K28_5


@pytest.fixture(scope="module")
def decoder():
    return Decoder8b10b()  # LUT construction is mildly expensive


class TestEncoder:
    def test_every_octet_roundtrips_from_rd_minus(self, decoder):
        for octet in range(256):
            encoder = Encoder8b10b()
            group = encoder.encode(octet)
            value, is_control = Decoder8b10b().decode(group)
            assert (value, is_control) == (octet, False)

    def test_every_octet_roundtrips_from_rd_plus(self):
        for octet in range(256):
            encoder = Encoder8b10b()
            encoder.rd = 1
            group = encoder.encode(octet)
            value, is_control = Decoder8b10b().decode(group)
            assert (value, is_control) == (octet, False)

    def test_all_k_codes_roundtrip(self):
        for code in (0x1C, 0x3C, 0x5C, 0x7C, 0x9C, 0xBC, 0xDC, 0xFC, 0xF7, 0xFB, 0xFD, 0xFE):
            for rd in (-1, 1):
                encoder = Encoder8b10b()
                encoder.rd = rd
                group = encoder.encode(code, control=True)
                value, is_control = Decoder8b10b().decode(group)
                assert (value, is_control) == (code, True)

    def test_invalid_k_code_rejected(self):
        with pytest.raises(Encoding8b10bError):
            Encoder8b10b().encode(0x00, control=True)

    def test_octet_range_enforced(self):
        with pytest.raises(Encoding8b10bError):
            Encoder8b10b().encode(256)

    def test_groups_have_legal_disparity(self):
        """Every code-group has 4, 5 or 6 ones — never worse."""
        encoder = Encoder8b10b()
        for octet in range(256):
            group = encoder.encode(octet)
            ones = bin(group).count("1")
            assert 4 <= ones <= 6

    def test_running_disparity_bounded(self):
        """Cumulative line disparity never exceeds +/-2 at group edges."""
        encoder = Encoder8b10b()
        rng = random.Random(7)
        disparity = 0
        for _ in range(20_000):
            group = encoder.encode(rng.randrange(256))
            disparity += 2 * bin(group).count("1") - 10
            assert abs(disparity) <= 2

    def test_disparity_bounded_with_k_codes_interleaved(self):
        encoder = Encoder8b10b()
        rng = random.Random(8)
        disparity = 0
        for index in range(5_000):
            if index % 5 == 0:
                group = encoder.encode(K28_5, control=True)
            else:
                group = encoder.encode(rng.randrange(256))
            disparity += 2 * bin(group).count("1") - 10
            assert abs(disparity) <= 2


class TestDecoder:
    def test_rejects_garbage_groups(self, decoder):
        with pytest.raises(Encoding8b10bError):
            decoder.decode(0b1111111111)  # disparity 10: impossible

    def test_rejects_out_of_range(self, decoder):
        with pytest.raises(Encoding8b10bError):
            decoder.decode(1 << 10)

    def test_comma_only_in_comma_codes(self, decoder):
        for code in COMMA_CODES:
            encoder = Encoder8b10b()
            group = encoder.encode(code, control=True)
            assert decoder.contains_comma(group)

    def test_data_groups_lack_comma(self, decoder):
        encoder = Encoder8b10b()
        for octet in range(256):
            group = encoder.encode(octet)
            assert not decoder.contains_comma(group)

    def test_bit_flip_usually_detected_or_misdecodes(self, decoder):
        """A flipped bit either fails validation or decodes to a different
        value — it can never silently decode to the original."""
        encoder = Encoder8b10b()
        group = encoder.encode(0x55)
        for bit in range(10):
            corrupted = group ^ (1 << bit)
            try:
                value, is_control = Decoder8b10b().decode(corrupted)
            except Encoding8b10bError:
                continue
            assert (value, is_control) != (0x55, False) or corrupted == group


@given(octets=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=64))
@settings(max_examples=50, deadline=None)
def test_property_stream_roundtrip(octets):
    encoder = Encoder8b10b()
    decoder = Decoder8b10b()
    for octet in octets:
        group = encoder.encode(octet)
        value, is_control = decoder.decode(group)
        assert value == octet
        assert not is_control


# ----------------------------------------------------------------------
# Comma alignment recovery (repro.phy.link_signal.CommaAligner)
# ----------------------------------------------------------------------
def _group_bits(group):
    """A 10-bit code-group in transmission order (bit 0 first)."""
    return [(group >> i) & 1 for i in range(10)]


def _ordered_sets(octets, start_rd):
    """K28.5 + data ordered sets, encoded with the given starting RD."""
    encoder = Encoder8b10b()
    encoder.rd = start_rd
    sets = []
    for octet in octets:
        sets.append(
            [encoder.encode(K28_5, control=True), encoder.encode(octet)]
        )
    return sets


@given(
    prefix=st.lists(st.integers(min_value=0, max_value=1), max_size=173),
    octets=st.lists(
        st.integers(min_value=0, max_value=255), min_size=4, max_size=12
    ),
    rd_plus=st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_property_realign_after_corrupt_prefix(prefix, octets, rd_plus):
    """After an arbitrary corrupt bit prefix, REALIGN_GOOD_GROUPS clean
    comma-bearing ordered sets restore alignment *and* absolute running
    disparity — every later group decodes exactly (the spec'd bound the
    link supervisor's 8b/10b signal adapter relies on)."""
    from repro.phy.link_signal import REALIGN_GOOD_GROUPS, CommaAligner

    sets = _ordered_sets(octets, 1 if rd_plus else -1)
    aligner = CommaAligner()
    aligner.push_bits(prefix)
    # The re-acquisition budget: the first REALIGN_GOOD_GROUPS sets may
    # decode as garbage (or not at all) while the comma hunt converges.
    for ordered_set in sets[:REALIGN_GOOD_GROUPS]:
        for group in ordered_set:
            aligner.push_bits(_group_bits(group))
    assert aligner.aligned
    # Past the budget the stream must decode verbatim, which also proves
    # the decoder's running disparity was re-anchored absolutely.
    decoded = []
    for ordered_set in sets[REALIGN_GOOD_GROUPS:]:
        for group in ordered_set:
            decoded.extend(aligner.push_bits(_group_bits(group)))
    expected = []
    for octet in octets[REALIGN_GOOD_GROUPS:]:
        expected.extend([(K28_5, True), (octet, False)])
    assert decoded == expected


def test_aligner_counts_slips_and_realigns():
    from repro.phy.link_signal import CommaAligner

    sets = _ordered_sets([0x55, 0xAA, 0x0F], start_rd=-1)
    aligner = CommaAligner()
    aligner.push_bits([1, 0, 1])  # junk: slipped during the hunt
    for ordered_set in sets:
        for group in ordered_set:
            aligner.push_bits(_group_bits(group))
    assert aligner.aligned
    assert aligner.realigns >= 1
    assert aligner.slips >= 3
    assert aligner.decode_errors == 0
