"""Unit tests for packet-level background traffic generators."""

import pytest

from repro.network.background import UdpFlow, heavy_load, medium_load
from repro.network.packet import PacketNetwork
from repro.network.topology import star
from repro.sim import units


def test_flow_sends_at_target_rate(sim, streams):
    net = PacketNetwork(sim, star(2))
    flow = UdpFlow(
        sim, net, "h0", "h1", rate_bps=1e9, rng=streams.stream("f"), cbr=True
    )
    sim.run_until(10 * units.MS)
    sent_bits = flow.packets_sent * flow.packet_bytes * 8
    assert sent_bits / 0.010 == pytest.approx(1e9, rel=0.05)


def test_poisson_flow_is_irregular(sim, streams):
    net = PacketNetwork(sim, star(2))
    flow = UdpFlow(sim, net, "h0", "h1", rate_bps=1e9, rng=streams.stream("f"))
    sim.run_until(10 * units.MS)
    assert flow.packets_sent > 100


def test_flow_stop(sim, streams):
    net = PacketNetwork(sim, star(2))
    flow = UdpFlow(sim, net, "h0", "h1", rate_bps=1e9, rng=streams.stream("f"))
    sim.run_until(units.MS)
    count = flow.packets_sent
    flow.stop()
    sim.run_until(5 * units.MS)
    assert flow.packets_sent == count


def test_stop_fs_bounds_flow(sim, streams):
    net = PacketNetwork(sim, star(2))
    flow = UdpFlow(
        sim, net, "h0", "h1", rate_bps=1e9, rng=streams.stream("f"),
        stop_fs=units.MS,
    )
    sim.run_until(10 * units.MS)
    early = flow.packets_sent
    assert early > 0
    sim.run_until(20 * units.MS)
    assert flow.packets_sent == early


def test_invalid_rate_rejected(sim, streams):
    net = PacketNetwork(sim, star(2))
    with pytest.raises(ValueError):
        UdpFlow(sim, net, "h0", "h1", rate_bps=0, rng=streams.stream("f"))


def test_medium_load_builds_five_flows(sim, streams):
    net = PacketNetwork(sim, star(8))
    hosts = [f"h{i}" for i in range(8)]
    flows = medium_load(sim, net, hosts, streams.stream("bg"))
    assert len(flows) == 5


def test_heavy_load_excludes_hosts(sim, streams):
    net = PacketNetwork(sim, star(8))
    hosts = [f"h{i}" for i in range(8)]
    flows = heavy_load(sim, net, hosts, streams.stream("bg"), exclude=["h7"])
    assert all(f.src != "h7" and f.dst != "h7" for f in flows)
