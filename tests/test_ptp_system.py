"""Integration tests for the PTP deployment."""

import pytest

from repro.network.packet import Switch
from repro.network.topology import star
from repro.ptp.messages import quantize_timestamp
from repro.ptp.network import PtpConfig, PtpDeployment
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def run_deployment(load, seconds=240, seed=21, config=None, exclude=None):
    sim = Simulator()
    streams = RandomStreams(seed)
    deployment = PtpDeployment(
        sim, star(5), streams, master="h0", config=config or PtpConfig()
    )
    deployment.apply_load(load, exclude_hosts=exclude)
    deployment.start()
    worst_tail = 0.0
    for second in range(1, seconds + 1):
        sim.run_until(second * units.SEC)
        if second > seconds // 2:
            worst = max(
                abs(deployment.true_offset_fs(n)) for n in deployment.slaves
            )
            worst_tail = max(worst_tail, worst)
    return deployment, worst_tail


class TestIdleNetwork:
    def test_slaves_converge_to_sub_microsecond(self):
        _, worst = run_deployment("idle")
        assert worst < units.US  # paper: hundreds of ns when idle

    def test_exchanges_complete(self):
        deployment, _ = run_deployment("idle", seconds=30)
        for slave in deployment.slaves.values():
            assert slave.exchanges_completed > 20

    def test_initial_error_removed(self):
        deployment, _ = run_deployment("idle", seconds=60)
        for slave in deployment.slaves.values():
            assert slave.servo.steps >= 1  # the initial step happened


class TestLoadDegradation:
    def test_medium_load_degrades_precision(self):
        _, idle_worst = run_deployment("idle")
        _, medium_worst = run_deployment("medium")
        assert medium_worst > 3 * idle_worst

    def test_heavy_load_degrades_further(self):
        _, medium_worst = run_deployment("medium")
        _, heavy_worst = run_deployment("heavy")
        assert heavy_worst > medium_worst
        assert heavy_worst > 20 * units.US  # paper: tens-to-hundreds of us

    def test_excluded_host_keeps_clean_links(self):
        deployment, _ = run_deployment("heavy", exclude=["h4"])
        host_iface = deployment.network.host("h4").interfaces["sw0"]
        assert host_iface.virtual_load is None


class TestTransparentClockModes:
    def test_ideal_tc_resists_load(self):
        config = PtpConfig(tc_mode=Switch.TC_IDEAL)
        _, ideal_worst = run_deployment("heavy", config=config)
        _, broken_worst = run_deployment("heavy")
        # A correct TC keeps PTP accurate under congestion (Section 2.4.2);
        # the enqueue-stamped one collapses (what the paper observed).
        assert ideal_worst < broken_worst / 3


class TestTimestamps:
    def test_quantize_timestamp_granularity(self):
        assert quantize_timestamp(12_345_678.0, 8_000_000) == 8_000_000
        assert quantize_timestamp(16_000_001.0, 8_000_000) == 16_000_000

    def test_master_not_in_slaves(self):
        sim = Simulator()
        deployment = PtpDeployment(
            sim, star(3), RandomStreams(1), master="h0"
        )
        assert "h0" not in deployment.slaves
        assert set(deployment.slaves) == {"h1", "h2"}

    def test_master_must_be_host(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PtpDeployment(sim, star(3), RandomStreams(1), master="sw0")

    def test_unknown_load_rejected(self):
        sim = Simulator()
        deployment = PtpDeployment(sim, star(3), RandomStreams(1), master="h0")
        with pytest.raises(ValueError):
            deployment.apply_load("apocalyptic")
