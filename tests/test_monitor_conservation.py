"""Tests for the bound monitor and packet-network conservation laws."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.faults import make_two_faced
from repro.dtp.monitor import BoundMonitor
from repro.dtp.network import DtpNetwork
from repro.network.packet import PacketNetwork
from repro.network.topology import chain, paper_testbed, star
from repro.sim import units
from repro.sim.engine import Simulator


class TestBoundMonitor:
    def test_healthy_network_stays_quiet(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(units.MS)
        monitor = BoundMonitor(net, [("n0", "n1")])
        sim.run_until(6 * units.MS)
        assert monitor.samples_seen > 30
        assert monitor.healthy
        assert not monitor.alerts

    def test_split_network_alarms(self, sim, streams):
        """A two-faced clock (large lie) splits the network; the monitor
        notices on the victim->honest direction.

        (Monitoring the liar's own outgoing link is useless: it stamps
        LOG records with the same lie, so that channel reads healthy —
        monitor both directions in production.)"""
        net = DtpNetwork(
            sim, chain(3), streams,
            skews={n: ConstantSkew(0.0) for n in ("n0", "n1", "n2")},
        )
        make_two_faced(net, "n1", "n2", lie_ticks=1000)
        net.start()
        sim.run_until(units.MS)
        alarms = []
        monitor = BoundMonitor(
            net, [("n2", "n1")], on_alarm=alarms.append
        )
        sim.run_until(6 * units.MS)
        assert not monitor.healthy
        assert alarms
        assert alarms[0].link == "n2-n1"
        assert abs(alarms[0].offset_ticks) > monitor.bound_ticks

    def test_single_violation_does_not_alarm(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(units.MS)
        monitor = BoundMonitor(net, [("n0", "n1")], violations_to_alarm=3)
        # Inject one bogus sample directly.
        monitor._windows["n0-n1"].append(True)
        monitor.alerts.append(None)
        assert monitor.healthy  # one blip is below the alarm threshold

    def test_monitor_on_paper_testbed(self, sim, streams):
        topo = paper_testbed()
        net = DtpNetwork(sim, topo, streams)
        net.start()
        sim.run_until(units.MS)
        pairs = [(edge.a, edge.b) for edge in topo.edges]
        monitor = BoundMonitor(net, pairs)
        sim.run_until(4 * units.MS)
        assert monitor.healthy
        assert monitor.samples_seen > len(pairs) * 20


class TestPacketConservation:
    @given(
        sends=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # src host index
                st.integers(min_value=0, max_value=3),  # dst host index
                st.integers(min_value=64, max_value=1500),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_property_no_loss_no_duplication_under_capacity(self, sends):
        """With roomy queues, every sent packet arrives exactly once."""
        sim = Simulator()
        net = PacketNetwork(sim, star(4), queue_capacity_bytes=10**7)
        received = []
        for i in range(4):
            net.host(f"h{i}").register_handler(
                "t", lambda p, f, l: received.append(p.packet_id)
            )
        sent_ids = []
        for src, dst, size in sends:
            if src == dst:
                continue
            packet = net.send(f"h{src}", f"h{dst}", size, "t")
            sent_ids.append(packet.packet_id)
        sim.run()
        assert sorted(received) == sorted(sent_ids)

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_property_drops_accounted(self, seed):
        """Sent = delivered + dropped, exactly, even under overload."""
        import random

        sim = Simulator()
        net = PacketNetwork(sim, star(3), queue_capacity_bytes=8 * 1024)
        rng = random.Random(seed)
        delivered = [0]
        net.host("h0").register_handler(
            "t", lambda p, f, l: delivered.__setitem__(0, delivered[0] + 1)
        )
        total = 80
        for _ in range(total):
            src = rng.choice(["h1", "h2"])
            net.send(src, "h0", 1500, "t")
        sim.run()
        dropped = sum(
            iface.queue.dropped
            for node in net.nodes.values()
            for iface in node.interfaces.values()
        )
        assert delivered[0] + dropped == total


class TestResetLink:
    def test_reset_clears_window_and_alarm(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(units.MS)
        monitor = BoundMonitor(net, [("n0", "n1")], violations_to_alarm=1)
        monitor._windows["n0-n1"].append(True)
        monitor.alarmed_links.add("n0-n1")
        assert not monitor.healthy
        monitor.reset_link("n0", "n1")
        assert monitor.healthy
        assert len(monitor._windows["n0-n1"]) == 0

    def test_reset_unknown_link_raises(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        monitor = BoundMonitor(net, [("n0", "n1")])
        with pytest.raises(KeyError):
            monitor.reset_link("n1", "n0")
