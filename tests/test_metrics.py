"""Unit and property tests for clock-stability metrics."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    MetricsError,
    allan_deviation,
    allan_deviation_curve,
    mtie,
    mtie_curve,
    summarize_stability,
    time_deviation,
)


class TestAllanDeviation:
    def test_constant_offset_has_zero_adev(self):
        assert allan_deviation([5.0] * 100, tau0=1.0) == 0.0

    def test_linear_ramp_has_zero_adev(self):
        """A pure frequency offset (linear phase) has zero second
        differences — ADEV measures *instability*, not offset."""
        ramp = [0.1 * i for i in range(100)]
        assert allan_deviation(ramp, tau0=1.0) == pytest.approx(0.0, abs=1e-15)

    def test_white_phase_noise_scales_down_with_tau(self):
        rng = random.Random(1)
        noise = [rng.gauss(0, 1e-9) for _ in range(4000)]
        adev1 = allan_deviation(noise, tau0=1.0, m=1)
        adev8 = allan_deviation(noise, tau0=1.0, m=8)
        assert adev8 < adev1

    def test_known_alternating_sequence(self):
        # x = [0, a, 0, a, ...]: second differences are +/-4a... compute.
        a = 2.0
        x = [a * (i % 2) for i in range(6)]
        # second diffs (m=1): x[i+2]-2x[i+1]+x[i] = -2a*(-1)^i pattern.
        expected = math.sqrt((4 * a * a) / 2.0)
        assert allan_deviation(x, tau0=1.0) == pytest.approx(expected)

    def test_too_short_raises(self):
        with pytest.raises(MetricsError):
            allan_deviation([1.0, 2.0], tau0=1.0)

    def test_invalid_params(self):
        with pytest.raises(MetricsError):
            allan_deviation([1.0] * 10, tau0=0.0)
        with pytest.raises(MetricsError):
            allan_deviation([1.0] * 10, tau0=1.0, m=0)

    def test_curve_octaves(self):
        rng = random.Random(2)
        series = [rng.gauss(0, 1) for _ in range(100)]
        curve = allan_deviation_curve(series, tau0=1.0)
        taus = sorted(curve)
        assert taus[0] == 1.0
        assert all(b == 2 * a for a, b in zip(taus, taus[1:]))


class TestMtie:
    def test_constant_series_zero(self):
        assert mtie([3.0] * 50, window_samples=10) == 0.0

    def test_step_detected(self):
        x = [0.0] * 20 + [5.0] * 20
        assert mtie(x, window_samples=10) == 5.0

    def test_window_limits_view(self):
        # Slow ramp: within a short window the error is small.
        x = [0.01 * i for i in range(1000)]
        short = mtie(x, window_samples=10)
        long = mtie(x, window_samples=500)
        assert short == pytest.approx(0.09, abs=1e-9)
        assert long == pytest.approx(4.99, abs=1e-9)

    def test_mtie_monotonic_in_window(self):
        rng = random.Random(3)
        x = [rng.gauss(0, 1) for _ in range(500)]
        values = [mtie(x, w) for w in (4, 16, 64, 256)]
        assert values == sorted(values)

    def test_window_too_small(self):
        with pytest.raises(MetricsError):
            mtie([1.0, 2.0, 3.0], window_samples=1)

    def test_curve(self):
        rng = random.Random(4)
        x = [rng.gauss(0, 1) for _ in range(100)]
        curve = mtie_curve(x, tau0=0.5)
        assert 1.0 in curve  # window 2 * tau0


class TestTimeDeviation:
    def test_constant_zero(self):
        assert time_deviation([1.0] * 50, tau0=1.0) == 0.0

    def test_positive_for_noise(self):
        rng = random.Random(5)
        x = [rng.gauss(0, 1e-9) for _ in range(200)]
        assert time_deviation(x, tau0=1.0) > 0

    def test_too_short(self):
        with pytest.raises(MetricsError):
            time_deviation([0.0, 1.0, 2.0], tau0=1.0, m=2)


class TestSummary:
    def test_summary_keys(self):
        rng = random.Random(6)
        offsets = [rng.gauss(0, 10_000_000) for _ in range(64)]  # ~10ns noise
        summary = summarize_stability(offsets, interval_fs=10**12)
        assert set(summary) == {"peak_to_peak_fs", "adev_tau0", "mtie_fs"}
        assert summary["peak_to_peak_fs"] > 0
        assert summary["mtie_fs"] <= summary["peak_to_peak_fs"] + 1e-9


@given(
    data=st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=10, max_size=200),
    window=st.integers(min_value=2, max_value=50),
)
@settings(max_examples=50, deadline=None)
def test_property_mtie_bounded_by_peak_to_peak(data, window):
    value = mtie(data, window)
    assert 0.0 <= value <= (max(data) - min(data)) + 1e-9


@given(
    scale=st.floats(min_value=1e-3, max_value=1e3),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=30, deadline=None)
def test_property_adev_scales_linearly(scale, seed):
    rng = random.Random(seed)
    base = [rng.gauss(0, 1) for _ in range(50)]
    scaled = [v * scale for v in base]
    a = allan_deviation(base, tau0=1.0)
    b = allan_deviation(scaled, tau0=1.0)
    assert b == pytest.approx(a * scale, rel=1e-9)
