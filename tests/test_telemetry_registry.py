"""Metrics registry: families, exposition, snapshots, digest stability."""

import json

import pytest

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    ExpositionError,
    MetricsRegistry,
    RegistryError,
    parse_exposition,
)


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    sent = registry.counter(
        "dtp_messages_sent_total", "messages", labelnames=("port", "type")
    )
    sent.labels(port="a->b", type="BEACON").inc(7)
    sent.labels(port="b->a", type="INIT").inc()
    gauge = registry.gauge("quarantined_nodes", "nodes").labels()
    gauge.set(3)
    gauge.dec()
    hist = registry.histogram("owd_ticks", "owd", labelnames=("port",))
    for value in (1, 3, 3, 900, 5000):
        hist.labels(port="a->b").observe(value)
    return registry


class TestFamilies:
    def test_counter_roundtrip(self):
        registry = build_registry()
        family = registry.get("dtp_messages_sent_total")
        assert family.labels(port="a->b", type="BEACON").value == 7

    def test_reregistration_returns_same_family(self):
        registry = build_registry()
        again = registry.counter(
            "dtp_messages_sent_total", "messages", labelnames=("port", "type")
        )
        assert again is registry.get("dtp_messages_sent_total")

    def test_reregistration_kind_mismatch_raises(self):
        registry = build_registry()
        with pytest.raises(RegistryError):
            registry.gauge(
                "dtp_messages_sent_total", "messages", labelnames=("port", "type")
            )

    def test_bad_label_names_raise(self):
        registry = build_registry()
        family = registry.get("dtp_messages_sent_total")
        with pytest.raises(RegistryError):
            family.labels(port="a->b")  # missing 'type'

    def test_bad_metric_name_raises(self):
        with pytest.raises(RegistryError):
            MetricsRegistry().counter("bad name", "nope")

    def test_histogram_buckets_cumulative(self):
        registry = build_registry()
        hist = registry.get("owd_ticks").labels(port="a->b")
        assert hist.count == 5
        assert hist.sum == 1 + 3 + 3 + 900 + 5000
        # 5000 exceeds the largest default bucket: overflow slot.
        assert hist.bucket_counts[-1] == 1
        assert len(hist.uppers) == len(DEFAULT_BUCKETS)

    def test_histogram_bad_buckets_raise(self):
        with pytest.raises(RegistryError):
            MetricsRegistry().histogram("h", "h", buckets=(4, 2, 1))


class TestExposition:
    def test_render_parses_with_checker(self):
        text = build_registry().render_prometheus()
        samples = parse_exposition(text)
        assert samples['dtp_messages_sent_total{port="a->b",type="BEACON"}'] == 7.0
        assert samples["quarantined_nodes"] == 2.0
        # Cumulative histogram: +Inf bucket equals the count.
        assert samples['owd_ticks_bucket{port="a->b",le="+Inf"}'] == 5.0
        assert samples['owd_ticks_count{port="a->b"}'] == 5.0

    def test_histogram_buckets_are_cumulative_in_exposition(self):
        samples = parse_exposition(build_registry().render_prometheus())
        uppers = [str(u) for u in DEFAULT_BUCKETS]
        values = [
            samples[f'owd_ticks_bucket{{port="a->b",le="{u}"}}'] for u in uppers
        ]
        assert values == sorted(values)
        assert values[0] == 1.0  # one observation <= 1
        assert values[2] == 3.0  # 1, 3, 3 <= 4

    def test_checker_rejects_garbage(self):
        with pytest.raises(ExpositionError):
            parse_exposition("not a metric line at all!")

    def test_checker_rejects_duplicate_sample(self):
        bad = "a_total 1\na_total 2\n"
        with pytest.raises(ExpositionError):
            parse_exposition(bad)

    def test_checker_rejects_bad_label_syntax(self):
        with pytest.raises(ExpositionError):
            parse_exposition('a_total{oops} 1\n')


class TestSnapshotAndDigest:
    def test_digest_is_stable_for_equal_content(self):
        assert build_registry().digest() == build_registry().digest()

    def test_digest_changes_with_content(self):
        registry = build_registry()
        before = registry.digest()
        registry.get("dtp_messages_sent_total").labels(
            port="a->b", type="BEACON"
        ).inc()
        assert registry.digest() != before

    def test_wallclock_section_never_in_digest(self):
        registry = build_registry()
        before = registry.digest()
        wall = registry.gauge(
            "wallclock_ns", "wall", labelnames=("name",), include_in_digest=False
        )
        wall.labels(name="run").set(123456789)
        snapshot = registry.snapshot()
        assert "wallclock_ns" in snapshot["wallclock"]
        assert "wallclock_ns" not in snapshot["metrics"]
        assert registry.digest() == before
        # And a different wall-clock value still digests identically.
        wall.labels(name="run").set(987654321)
        assert registry.digest() == before

    def test_snapshot_is_canonical_jsonable(self):
        snapshot = build_registry().snapshot()
        encoded = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
        assert json.loads(encoded) == snapshot
