"""Unit tests for external (UTC) synchronization over DTP (Section 5.2)."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.clocks.tsc import TscCounter
from repro.dtp.daemon import DtpDaemon
from repro.dtp.external import UtcMaster, UtcSlave
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.network.topology import chain
from repro.sim import units


@pytest.fixture
def deployment(sim, streams):
    """A synced two-node DTP network with a daemon on each node."""
    net = DtpNetwork(
        sim, chain(2), streams,
        config=DtpPortConfig(beacon_interval_ticks=1200),
    )
    net.start()
    sim.run_until(units.MS)
    daemons = {}
    for index, name in enumerate(("n0", "n1")):
        tsc = TscCounter(skew=ConstantSkew(3.0 * index - 5.0))
        daemons[name] = DtpDaemon(
            sim, net.devices[name], tsc, streams.stream(f"daemon/{name}"),
            sample_interval_fs=units.MS, smoothing_window=4,
        )
        daemons[name].start()
    sim.run_until(10 * units.MS)
    return net, daemons


def test_slave_learns_utc(sim, streams, deployment):
    net, daemons = deployment
    master = UtcMaster(sim, daemons["n0"], broadcast_interval_fs=5 * units.MS)
    slave = UtcSlave(daemons["n1"])
    master.subscribe(slave)
    master.start()
    sim.run_until(40 * units.MS)
    error = slave.utc_error_fs(sim.now)
    assert error is not None
    # DTP counters everywhere tick in lockstep; residual error is the two
    # daemons' read errors (~tens of ns).
    assert abs(error) < 500 * units.NS


def test_slave_without_broadcast_returns_none(sim, streams, deployment):
    _, daemons = deployment
    slave = UtcSlave(daemons["n1"])
    assert slave.get_utc(sim.now) is None
    assert slave.utc_error_fs(sim.now) is None


def test_master_bias_propagates(sim, streams, deployment):
    """A biased UTC source shifts everyone equally (accuracy != precision)."""
    net, daemons = deployment
    bias = 3 * units.US
    master = UtcMaster(
        sim, daemons["n0"], utc_error_fs=bias, broadcast_interval_fs=5 * units.MS
    )
    slave = UtcSlave(daemons["n1"])
    master.subscribe(slave)
    master.start()
    sim.run_until(40 * units.MS)
    assert slave.utc_error_fs(sim.now) == pytest.approx(bias, abs=units.US)


def test_frequency_ratio_converges(sim, streams, deployment):
    net, daemons = deployment
    master = UtcMaster(sim, daemons["n0"], broadcast_interval_fs=5 * units.MS)
    slave = UtcSlave(daemons["n1"])
    master.subscribe(slave)
    master.start()
    sim.run_until(50 * units.MS)
    # ~6.4 fs of UTC per DTP counter unit.
    assert slave._fs_per_count == pytest.approx(6_400_000, rel=1e-3)


def test_master_stop(sim, streams, deployment):
    _, daemons = deployment
    master = UtcMaster(sim, daemons["n0"], broadcast_interval_fs=2 * units.MS)
    slave = UtcSlave(daemons["n1"])
    master.subscribe(slave)
    master.start()
    sim.run_until(20 * units.MS)
    count = len(slave.pairs)
    master.stop()
    sim.run_until(40 * units.MS)
    assert len(slave.pairs) == count
