"""Unit tests for the DTP software daemon (paper Section 5.1, Figure 7)."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.clocks.tsc import TscCounter
from repro.dtp.daemon import DtpDaemon, PcieModel, moving_average
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.network.topology import chain
from repro.sim import units


@pytest.fixture
def synced_net(sim, streams):
    net = DtpNetwork(
        sim, chain(2), streams,
        config=DtpPortConfig(beacon_interval_ticks=1200),
    )
    net.start()
    sim.run_until(units.MS)
    return net


def make_daemon(sim, net, streams, **kwargs):
    tsc = TscCounter(skew=ConstantSkew(-5.0))
    return DtpDaemon(
        sim, net.devices["n0"], tsc, streams.stream("daemon"), **kwargs
    )


class TestSampling:
    def test_reads_accumulate(self, sim, streams, synced_net):
        daemon = make_daemon(sim, synced_net, streams, sample_interval_fs=units.MS)
        daemon.start()
        sim.run_until(11 * units.MS)
        assert daemon.reads >= 9

    def test_stop_halts_reads(self, sim, streams, synced_net):
        daemon = make_daemon(sim, synced_net, streams, sample_interval_fs=units.MS)
        daemon.start()
        sim.run_until(5 * units.MS)
        daemon.stop()
        count = daemon.reads
        sim.run_until(10 * units.MS)
        assert daemon.reads <= count + 1  # at most one in-flight completes

    def test_get_counter_before_samples_raises(self, sim, streams, synced_net):
        daemon = make_daemon(sim, synced_net, streams)
        with pytest.raises(RuntimeError):
            daemon.get_dtp_counter(sim.now)

    def test_start_is_idempotent(self, sim, streams, synced_net):
        daemon = make_daemon(sim, synced_net, streams, sample_interval_fs=units.MS)
        daemon.start()
        daemon.start()
        sim.run_until(3 * units.MS)
        assert daemon.reads <= 4


class TestSampleTime:
    def test_samples_carry_simulated_clock_time(self, sim, streams, synced_net):
        """Regression: DaemonSample.time_fs is the simulated-clock midpoint
        of the read, not a default.  Before the fix the field did not
        exist and consumers had to infer sample times from deque
        positions, which breaks whenever a read is skipped or delayed."""
        daemon = make_daemon(sim, synced_net, streams, sample_interval_fs=units.MS)
        daemon.start()
        sim.run_until(8 * units.MS)
        assert daemon.samples
        for sample in daemon.samples:
            assert sample.time_fs == (sample.issued_fs + sample.completed_fs) // 2
            assert sample.issued_fs <= sample.time_fs <= sample.completed_fs

    def test_sample_times_strictly_increase(self, sim, streams, synced_net):
        daemon = make_daemon(sim, synced_net, streams, sample_interval_fs=units.MS)
        daemon.start()
        sim.run_until(10 * units.MS)
        times = [s.time_fs for s in daemon.samples]
        assert times == sorted(times)
        assert len(set(times)) == len(times)


class TestAccuracy:
    def test_estimate_tracks_truth_within_figure7a(self, sim, streams, synced_net):
        daemon = make_daemon(sim, synced_net, streams, sample_interval_fs=units.MS)
        daemon.start()
        sim.run_until(6 * units.MS)
        offsets = []
        t = sim.now
        for _ in range(200):
            t += 1013 * units.US // 1000 * 997  # ~1 ms, co-prime-ish
            sim.run_until(t)
            truth = synced_net.devices["n0"].global_counter(t)
            offsets.append(truth - daemon.get_dtp_counter(t))
        p50 = sorted(abs(o) for o in offsets)[len(offsets) // 2]
        assert p50 <= 16  # "usually better than 16 ticks" (Figure 7a)

    def test_frequency_ratio_estimated(self, sim, streams, synced_net):
        daemon = make_daemon(sim, synced_net, streams, sample_interval_fs=units.MS)
        daemon.start()
        sim.run_until(20 * units.MS)
        # DTP ticks per TSC cycle: 156.25 MHz / 2.9 GHz ~ 0.0539.
        assert daemon.estimated_frequency_ratio() == pytest.approx(0.0539, rel=0.01)

    def test_daemon_smoothing_reduces_spread(self, sim, streams, synced_net):
        daemon = make_daemon(
            sim, synced_net, streams, sample_interval_fs=units.MS,
        )
        daemon.start()
        sim.run_until(15 * units.MS)
        device = synced_net.devices["n0"]

        def spread(window):
            daemon.smoothing_window = window
            values = []
            t = sim.now
            for _ in range(150):
                t += units.MS
                sim.run_until(t)
                values.append(device.global_counter(t) - daemon.get_dtp_counter(t))
            ordered = sorted(abs(v) for v in values)
            return ordered[int(len(ordered) * 0.95)]

        raw = spread(1)
        smoothed = spread(8)
        assert smoothed <= raw + 1


class TestPcieModel:
    def test_latency_in_plausible_range(self, streams):
        model = PcieModel()
        rng = streams.stream("pcie")
        samples = [model.sample_one_way(rng) for _ in range(1000)]
        assert min(samples) >= model.base_fs
        assert max(samples) < 10 * units.US

    def test_spikes_occur(self, streams):
        model = PcieModel(spike_probability=0.5)
        rng = streams.stream("pcie2")
        samples = [model.sample_one_way(rng) for _ in range(200)]
        spiky = sum(1 for s in samples if s > model.base_fs + model.jitter_fs)
        assert spiky > 50


class TestMovingAverage:
    def test_window_one_is_identity(self):
        values = [3, 1, 4, 1, 5]
        assert moving_average(values, 1) == [3.0, 1.0, 4.0, 1.0, 5.0]

    def test_window_smooths_spike(self):
        values = [0] * 10 + [100] + [0] * 10
        smoothed = moving_average(values, 10)
        assert max(smoothed) == pytest.approx(10.0)

    def test_warmup_uses_partial_window(self):
        assert moving_average([4, 8], 4) == [4.0, 6.0]

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            moving_average([1], 0)
