"""Cross-validation of the O(n) MTIE against a naive O(n*w) reference."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import mtie


def naive_mtie(x, window):
    """Direct definition: max over windows of (max - min)."""
    window = min(window, len(x))
    worst = 0.0
    for start in range(len(x) - window + 1):
        chunk = x[start : start + window]
        worst = max(worst, max(chunk) - min(chunk))
    return worst


@given(
    data=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=120,
    ),
    window=st.integers(min_value=2, max_value=40),
)
@settings(max_examples=200, deadline=None)
def test_property_mtie_matches_naive(data, window):
    assert mtie(data, window) == naive_mtie(data, window)


def test_mtie_matches_naive_on_random_walks():
    rng = random.Random(12)
    walk = [0.0]
    for _ in range(500):
        walk.append(walk[-1] + rng.gauss(0, 1))
    for window in (2, 7, 33, 128, 500):
        assert mtie(walk, window) == naive_mtie(walk, window)
