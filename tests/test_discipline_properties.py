"""Property tests for the skewless discipline (hypothesis).

The skewless controller (arXiv:1208.5703) claims two things this file
pins for *any* gain pair inside the documented Jury stability region
(gamma1 > 0, 0 < gamma2 < 2, gamma1 + 2*gamma2 < 4):

1. it converges — driving a deterministic plant from a large initial
   offset into a bounded band, without sign-flipping blow-ups;
2. it is jump-free by construction — every action is a slew, never a
   phase step, and the commanded frequency is always inside the clamp.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discipline.base import ACTION_SLEW, Observation, build_discipline
from repro.discipline.skewless import (
    SkewlessDiscipline,
    closed_loop_poles,
    stable_gains,
)
from repro.sim import units

import pytest

INTERVAL_FS = 25 * units.US


def stable_gain_pairs():
    """Gain pairs strictly inside the Jury region (margin keeps the
    discrete simulation away from the marginally-stable boundary)."""
    return (
        st.tuples(
            st.floats(min_value=0.05, max_value=1.5),
            st.floats(min_value=0.05, max_value=1.5),
        )
        .filter(lambda g: stable_gains(*g))
        .filter(lambda g: g[0] + 2 * g[1] < 3.6)
    )


def run_plant(disc, initial_offset_fs, drift_ppm=0.0, rounds=400):
    """Drive a noiseless first-order plant: offset integrates the commanded
    frequency error plus a constant oscillator drift.  Returns the offset
    trajectory (fs) and the commanded frequencies."""
    offset = float(initial_offset_fs)
    t = 0
    freq = 0.0
    offsets, freqs = [], []
    for _ in range(rounds):
        t += INTERVAL_FS
        offset += (freq + drift_ppm * 1e-6) * INTERVAL_FS
        action = disc.observe(
            Observation(time_fs=t, offset_fs=offset, interval_fs=INTERVAL_FS)
        )
        assert action.kind == ACTION_SLEW
        assert action.step_fs == 0.0
        freq = action.freq_adj
        offsets.append(offset)
        freqs.append(freq)
    return offsets, freqs


@given(gains=stable_gain_pairs(), drift_ppm=st.floats(min_value=-40, max_value=40))
@settings(max_examples=40, deadline=None)
def test_stable_gains_converge_without_jumps(gains, drift_ppm):
    gamma1, gamma2 = gains
    disc = SkewlessDiscipline(gamma1=gamma1, gamma2=gamma2)
    offsets, freqs = run_plant(disc, initial_offset_fs=100 * units.NS,
                               drift_ppm=drift_ppm)
    # Converges: the last quarter of the run stays inside a band much
    # smaller than the initial offset (zero in this noiseless plant, but
    # allow the clamp-limited approach a little slack).
    tail = offsets[-100:]
    assert max(abs(o) for o in tail) < 10 * units.NS
    # Jump-free by construction: never steps, and the commanded frequency
    # honors the clamp on every single action.
    assert disc.snapshot()["slews"] == len(offsets)
    assert all(abs(f) <= disc.max_freq_adj + 1e-18 for f in freqs)


@given(gains=stable_gain_pairs())
@settings(max_examples=60, deadline=None)
def test_stable_gains_matches_pole_magnitudes(gains):
    """The algebraic region test agrees with the closed-loop poles."""
    poles = closed_loop_poles(*gains)
    assert max(abs(p) for p in poles) < 1.0


@given(
    gamma1=st.floats(min_value=-1.0, max_value=5.0),
    gamma2=st.floats(min_value=-1.0, max_value=5.0),
)
@settings(max_examples=80, deadline=None)
def test_region_boundary_agrees_with_poles(gamma1, gamma2):
    """stable_gains(g1, g2) <=> both poles strictly inside the unit circle
    (away from the boundary, where floating point gets a say)."""
    margin = 1e-6
    on_edge = (
        abs(gamma1) < margin
        or abs(gamma2) < margin
        or abs(gamma2 - 2.0) < margin
        or abs(gamma1 + 2 * gamma2 - 4.0) < margin
    )
    if on_edge:
        return
    magnitude = max(abs(p) for p in closed_loop_poles(gamma1, gamma2))
    assert stable_gains(gamma1, gamma2) == (magnitude < 1.0 - 1e-12) or (
        abs(magnitude - 1.0) < 1e-9
    )


def test_unstable_gains_rejected_at_construction():
    with pytest.raises(Exception):
        SkewlessDiscipline(gamma1=2.5, gamma2=1.0)
    # ... unless explicitly allowed (for racing an unstable card on purpose).
    disc = SkewlessDiscipline(gamma1=2.5, gamma2=1.0, unstable_ok=True)
    assert disc.kind == "skewless"


def test_unstable_gains_actually_diverge():
    """Outside the region the same plant never settles — the region is
    tight.  The +/-500 ppm clamp caps the blow-up into a sign-flipping
    limit cycle well above the starting offset (the pathology the race's
    construction-time gain check exists to reject)."""
    disc = SkewlessDiscipline(gamma1=3.0, gamma2=1.9, unstable_ok=True)
    offsets, _freqs = run_plant(
        disc, initial_offset_fs=units.NS, rounds=200
    )
    tail = offsets[-20:]
    assert min(abs(o) for o in tail) > 4 * units.NS  # grew from 1 ns, stuck
    flips = sum(1 for a, b in zip(tail, tail[1:]) if (a < 0) != (b < 0))
    assert flips >= 15  # alternating every interval: the limit cycle


def test_build_discipline_spec_roundtrip():
    disc = build_discipline({"kind": "skewless", "gamma1": 0.3, "gamma2": 0.4})
    assert isinstance(disc, SkewlessDiscipline)
    assert math.isclose(disc.gamma1, 0.3)


def test_snapshot_is_int_and_str_only():
    disc = SkewlessDiscipline()
    run_plant(disc, initial_offset_fs=units.NS, rounds=5)
    for key, value in disc.snapshot().items():
        assert isinstance(value, (int, str)), (key, value)
