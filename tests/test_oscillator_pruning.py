"""Tests for the oscillator's segment-pruning window and the O(log)
``time_after_ticks`` rewrite.

Pruning bounds the segment list's memory on long runs; cumulative tick
counts are carried in each segment, so every *forward* query must return
exactly what an unpruned oscillator returns, while queries behind the
pruned horizon must raise instead of silently extrapolating.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.clock import TickClock
from repro.clocks.oscillator import ConstantSkew, Oscillator, RandomWalkSkew
from repro.sim import units

TICK = units.TICK_10G_FS


def _pair(window):
    """An unpruned and a pruned oscillator over the same skew process."""
    plain = Oscillator(TICK, RandomWalkSkew(0.0, seed=11))
    pruned = Oscillator(
        TICK, RandomWalkSkew(0.0, seed=11), prune_window_segments=window
    )
    return plain, pruned


class TestPruningWindow:
    def test_rejects_window_below_two(self):
        with pytest.raises(ValueError):
            Oscillator(TICK, ConstantSkew(0.0), prune_window_segments=1)

    def test_forward_queries_identical_to_unpruned(self):
        plain, pruned = _pair(window=4)
        # March far enough that dozens of segments are created and pruned;
        # every forward query must agree bit-for-bit.
        for ms in range(1, 60, 3):
            t = ms * units.MS + 137
            assert pruned.ticks_at(t) == plain.ticks_at(t)
            assert pruned.next_edge_after(t) == plain.next_edge_after(t)
            n = plain.ticks_at(t)
            assert pruned.time_of_tick(n) == plain.time_of_tick(n)

    def test_segment_list_stays_bounded(self):
        _, pruned = _pair(window=4)
        pruned.ticks_at(200 * units.MS)
        assert len(pruned._segments) <= 4
        assert pruned.pruned_before_fs > 0

    def test_backward_time_query_raises_past_horizon(self):
        _, pruned = _pair(window=3)
        pruned.ticks_at(50 * units.MS)
        with pytest.raises(ValueError, match="pruned horizon"):
            pruned.ticks_at(0)

    def test_backward_tick_query_raises_past_horizon(self):
        _, pruned = _pair(window=3)
        pruned.ticks_at(50 * units.MS)
        with pytest.raises(ValueError, match="pruned horizon"):
            pruned.time_of_tick(1)

    def test_unpruned_still_supports_backward_queries(self):
        plain, _ = _pair(window=2)
        plain.ticks_at(50 * units.MS)
        assert plain.ticks_at(0) == 0
        assert plain.time_of_tick(1) == plain.next_edge_after(0)


class TestTimeAfterTicks:
    @settings(max_examples=80, deadline=None)
    @given(
        t=st.integers(min_value=0, max_value=5 * units.MS),
        ticks=st.integers(min_value=-2, max_value=400),
        ppm=st.floats(min_value=-100.0, max_value=100.0),
    )
    def test_matches_iterated_next_edge(self, t, ticks, ppm):
        # The O(log segments) closed form must agree with the definition:
        # iterating next_edge_after `ticks` times.
        clock = TickClock(Oscillator(TICK, ConstantSkew(ppm)))
        fast = clock.time_after_ticks(t, ticks)
        reference = t
        for _ in range(max(0, ticks)):
            reference = clock.oscillator.next_edge_after(reference)
        assert fast == reference

    def test_crosses_segment_boundaries(self):
        clock = TickClock(Oscillator(TICK, RandomWalkSkew(0.0, seed=7)))
        # One update interval is 1 ms => ~156k ticks; stepping 400k ticks
        # spans several segments with different periods.
        t = clock.time_after_ticks(123, 400_000)
        assert clock.oscillator.ticks_at(t) == clock.oscillator.ticks_at(123) + 400_000
        # An edge time: the previous femtosecond holds one fewer tick.
        assert clock.oscillator.ticks_at(t - 1) == clock.oscillator.ticks_at(t) - 1
