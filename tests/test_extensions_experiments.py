"""Smoke tests for the extension experiments."""

from repro.experiments.extensions import (
    run_boundary_cascade,
    run_spanning_tree_comparison,
    run_synce_ablation,
)
from repro.sim import units


def test_synce_ablation():
    result = run_synce_ablation(duration_fs=3 * units.MS)
    assert result.summary["synce_no_worse"]
    assert result.summary["synce_within_two_ticks"]


def test_spanning_tree_comparison():
    result = run_spanning_tree_comparison(duration_fs=4 * units.MS)
    assert result.summary["plain_follows_runaway"]
    assert result.summary["tree_holds_master_rate"]
    assert result.summary["worst_offset_ticks_tree"] <= 8


def test_boundary_cascade_grows():
    result = run_boundary_cascade(depths=[1, 3], duration_fs=150 * units.SEC)
    assert result.summary["cascade_grows"]
    by_depth = result.summary["worst_leaf_offset_ns_by_depth"]
    assert by_depth[3] > by_depth[1]
