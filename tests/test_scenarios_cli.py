"""Tests for the scenario registry, CLI dispatch, and GPS-anchored UTC."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.clocks.tsc import TscCounter
from repro.dtp.daemon import DtpDaemon
from repro.dtp.external import UtcMaster, UtcSlave
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.experiments import cli
from repro.gps.receiver import GpsReceiver
from repro.network.topology import chain
from repro.scenarios import SCENARIOS, build
from repro.sim import units


class TestScenarios:
    def test_registry_names(self):
        assert "paper-testbed-loaded" in SCENARIOS
        assert "worst-case-pair" in SCENARIOS

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            build("does-not-exist")

    def test_worst_case_pair_holds_bound(self):
        scenario = build("worst-case-pair", seed=3)
        worst = scenario.run_and_measure(3 * units.MS)
        assert worst <= scenario.offset_bound_ticks

    def test_paper_testbed_loaded_holds_bound(self):
        scenario = build("paper-testbed-loaded", seed=3)
        worst = scenario.run_and_measure(2 * units.MS)
        assert worst <= scenario.offset_bound_ticks

    def test_rack_scenario(self):
        scenario = build("rack", seed=5)
        worst = scenario.run_and_measure(2 * units.MS)
        assert worst <= scenario.offset_bound_ticks
        assert scenario.dtp.all_synchronized()

    def test_seeds_are_reproducible(self):
        a = build("worst-case-pair", seed=11).run_and_measure(2 * units.MS)
        b = build("worst-case-pair", seed=11).run_and_measure(2 * units.MS)
        assert a == b


class TestCli:
    def test_every_command_is_registered(self):
        for name in (
            "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f",
            "fig7", "table1", "table2", "bounds", "convergence",
            "ablations", "extensions", "stability",
        ):
            assert name in cli.COMMANDS

    def test_dispatch_runs_selected_command(self, monkeypatch, capsys):
        called = []
        monkeypatch.setitem(
            cli.COMMANDS, "fig6a", lambda quick: called.append(quick) or ["ran"]
        )
        assert cli.main(["fig6a", "--quick"]) == 0
        assert called == [True]
        assert "ran" in capsys.readouterr().out

    def test_all_runs_everything_except_report(self, monkeypatch, capsys):
        ran = []
        for name in list(cli.COMMANDS):
            monkeypatch.setitem(
                cli.COMMANDS, name, (lambda n: lambda quick: ran.append(n) or [])(name)
            )
        assert cli.main(["all"]) == 0
        expected = sorted(name for name in cli.COMMANDS if name != "report")
        assert sorted(ran) == expected

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["figure-nine"])

    def test_hybrid_and_sweeps_registered(self):
        assert "hybrid" in cli.COMMANDS
        assert "sweeps" in cli.COMMANDS

    def test_plot_flag_sets_module_state(self, monkeypatch):
        monkeypatch.setitem(cli.COMMANDS, "fig6a", lambda quick: [])
        monkeypatch.setattr(cli, "PLOT", False)
        cli.main(["fig6a", "--plot"])
        assert cli.PLOT is True
        cli.main(["fig6a"])
        assert cli.PLOT is False

    def test_csv_export_writes_files(self, tmp_path):
        from repro.experiments.harness import ExperimentResult, TimeSeries

        series = TimeSeries(label="pair")
        series.append(0, 1.0)
        series.append(10, 2.0)
        result = ExperimentResult(name="demo", series=[series])
        messages = cli.export_csv(result, str(tmp_path))
        assert len(messages) == 1
        content = (tmp_path / "demo.pair.csv").read_text().splitlines()
        assert content[0] == "time_fs,pair"
        assert content[1] == "0,1.0"
        assert content[2] == "10,2.0"


class TestGpsAnchoredUtc:
    def test_gps_source_feeds_broadcasts(self, sim, streams):
        net = DtpNetwork(
            sim, chain(2), streams,
            config=DtpPortConfig(beacon_interval_ticks=1200),
        )
        net.start()
        sim.run_until(units.MS)
        daemons = {}
        for name in ("n0", "n1"):
            tsc = TscCounter(skew=ConstantSkew(-4.0), name=f"tsc/{name}")
            daemons[name] = DtpDaemon(
                sim, net.devices[name], tsc, streams.stream(f"d/{name}"),
                sample_interval_fs=units.MS, smoothing_window=4,
            )
            daemons[name].start()
        sim.run_until(8 * units.MS)
        gps = GpsReceiver(streams.stream("gps"))
        master = UtcMaster(
            sim, daemons["n0"], utc_source=gps.read_fs,
            broadcast_interval_fs=4 * units.MS,
        )
        slave = UtcSlave(daemons["n1"])
        master.subscribe(slave)
        master.start()
        sim.run_until(40 * units.MS)
        error = slave.utc_error_fs(sim.now)
        assert error is not None
        # GPS noise (~100 ns) + daemon read error: within half a us.
        assert abs(error) < 500 * units.NS
