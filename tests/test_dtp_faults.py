"""Unit tests for fault-injection helpers and Section 5.4 scenarios."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.faults import (
    expected_partition_divergence_ticks,
    runaway_skews,
    schedule_partition,
)
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.network.topology import chain
from repro.sim import units


def test_runaway_skews_map():
    skews = runaway_skews(["a", "b", "c"], runaway_node="b", runaway_ppm=500.0)
    assert skews["b"].ppm == 500.0
    assert skews["a"].ppm == 0.0


def test_partition_scheduling_validates_order(sim, streams):
    net = DtpNetwork(sim, chain(2), streams)
    with pytest.raises(ValueError):
        schedule_partition(net, "n0", "n1", down_at_fs=10, up_at_fs=5)


def test_expected_divergence_math():
    # 1 ms apart at 200 ppm gap: 1e12/6.4e6 ticks * 2e-4 = 31.25 ticks.
    ticks = expected_partition_divergence_ticks(units.MS, 200.0)
    assert ticks == pytest.approx(31.25)


def test_network_follows_runaway_oscillator(sim, streams):
    """Section 5.4: everyone follows the fastest clock, even out-of-spec."""
    skews = {
        "n0": ConstantSkew(500.0),  # out of the IEEE envelope
        "n1": ConstantSkew(0.0),
    }
    net = DtpNetwork(sim, chain(2), streams, skews=skews)
    net.start()
    sim.run_until(5 * units.MS)
    # n1's counter must have been dragged up to the runaway's rate:
    # 5 ms at +500 ppm = ~390 extra ticks over nominal.
    nominal_ticks = 5 * units.MS // units.TICK_10G_FS
    assert net.counter_of("n1") > nominal_ticks + 300


def test_fault_detector_quarantines_runaway(sim, streams):
    """With jump-rate detection on, the sane node stops following."""
    config = DtpPortConfig(fault_window_beacons=200, max_jumps_per_window=20)
    skews = {
        "n0": ConstantSkew(800.0),
        "n1": ConstantSkew(0.0),
    }
    net = DtpNetwork(sim, chain(2), streams, config=config, skews=skews)
    net.start()
    sim.run_until(10 * units.MS)
    sane_port = net.ports[("n1", "n0")]
    assert sane_port.peer_faulty
