"""The campaign runner: spec validation, determinism, acceptance matrix."""

import json

import pytest

from repro.faultlab import (
    BUILTIN_SCENARIOS,
    CampaignError,
    build_fault,
    build_topology,
    builtin_specs,
    metrics_digest,
    render_campaign,
    run_campaign,
    run_scenario,
)
from repro.faultlab.cli import main as faultlab_main
from repro.sim import units


def _spec(name="baseline", **overrides):
    spec = {
        "name": name,
        "topology": {"kind": "chain", "hosts": 3},
        "duration_fs": 600 * units.US,
        "faults": [],
    }
    spec.update(overrides)
    return spec


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_topology_builders():
    assert len(build_topology({"kind": "chain", "hosts": 4}).nodes) == 4
    assert len(build_topology({"kind": "star", "hosts": 3}).nodes) == 4
    assert len(
        build_topology({"kind": "two-level-tree", "branches": 2, "leaves": 2}).nodes
    ) == 7
    assert build_topology({"kind": "paper-testbed"}).nodes
    assert build_topology({"kind": "fat-tree", "k": 2}).nodes


def test_topology_spec_errors():
    with pytest.raises(CampaignError, match="unknown topology kind"):
        build_topology({"kind": "moebius"})
    with pytest.raises(CampaignError, match="missing parameter"):
        build_topology({"kind": "chain"})
    with pytest.raises(CampaignError, match="unknown topology parameters"):
        build_topology({"kind": "chain", "hosts": 3, "color": "red"})


def test_fault_spec_errors():
    with pytest.raises(CampaignError, match="unknown fault kind"):
        build_fault({"kind": "gremlin"})
    with pytest.raises(CampaignError, match="bad parameters"):
        build_fault({"kind": "partition", "a": "n0"})
    fault = build_fault(
        {"kind": "partition", "a": "n0", "b": "n1",
         "down_at_fs": 1, "up_at_fs": 2},
        index=3,
    )
    assert fault.name == "partition-3"


def test_scenario_spec_errors():
    with pytest.raises(CampaignError, match="unknown scenario keys"):
        run_scenario(_spec(color="red"))
    with pytest.raises(CampaignError, match="'topology' and 'duration_fs'"):
        run_scenario({"name": "x"})
    with pytest.raises(CampaignError, match="duplicate fault name"):
        run_scenario(
            _spec(faults=[
                {"kind": "partition", "a": "n0", "b": "n1",
                 "down_at_fs": 1 * units.US, "up_at_fs": 2 * units.US,
                 "name": "p"},
                {"kind": "partition", "a": "n1", "b": "n2",
                 "down_at_fs": 1 * units.US, "up_at_fs": 2 * units.US,
                 "name": "p"},
            ])
        )
    with pytest.raises(CampaignError, match="need a 'name'"):
        run_campaign([{"topology": {}, "duration_fs": 1}])


def test_builtin_catalogue():
    assert len(BUILTIN_SCENARIOS) >= 6
    specs = builtin_specs()
    assert [s["name"] for s in specs] == list(BUILTIN_SCENARIOS)
    quick = builtin_specs(["baseline"], quick=True)[0]
    full = builtin_specs(["baseline"])[0]
    assert quick["duration_fs"] < full["duration_fs"]
    with pytest.raises(CampaignError, match="unknown scenario"):
        builtin_specs(["volcano"])


# ----------------------------------------------------------------------
# Determinism (acceptance criterion)
# ----------------------------------------------------------------------
def test_same_seed_same_digest():
    specs = builtin_specs(["baseline", "link-flap"], quick=True)
    first = run_campaign(specs, base_seed=5)
    second = run_campaign(specs, base_seed=5)
    assert metrics_digest(first) == metrics_digest(second)


def test_different_seed_different_digest():
    specs = builtin_specs(["link-flap"], quick=True)
    assert metrics_digest(run_campaign(specs, base_seed=5)) != metrics_digest(
        run_campaign(specs, base_seed=6)
    )


def test_parallel_campaign_matches_serial():
    specs = builtin_specs(["baseline", "two-faced"], quick=True)
    serial = run_campaign(specs, base_seed=0, jobs=1)
    parallel = run_campaign(specs, base_seed=0, jobs=2)
    assert metrics_digest(serial) == metrics_digest(parallel)


def test_seed_follows_scenario_name_not_position():
    # Reordering scenarios must not change any individual result.
    forward = run_campaign(
        builtin_specs(["baseline", "link-flap"], quick=True), base_seed=0
    )
    backward = run_campaign(
        builtin_specs(["link-flap", "baseline"], quick=True), base_seed=0
    )
    assert forward["link-flap"] == backward["link-flap"]
    assert forward["baseline"] == backward["baseline"]


def test_metrics_are_json_roundtrippable():
    result = run_scenario(_spec(), seed=3)
    assert json.loads(json.dumps(result)) == result


# ----------------------------------------------------------------------
# Acceptance matrix
# ----------------------------------------------------------------------
def test_baseline_reports_zero_violations():
    [result] = run_campaign(builtin_specs(["baseline"], quick=True)).values()
    assert result["violations_total"] == 0
    assert result["ticks_above_bound"] == 0
    assert result["all_synchronized"] == 1
    assert result["checks_run"] > 0


def test_two_faced_is_flagged():
    [result] = run_campaign(builtin_specs(["two-faced"], quick=True)).values()
    assert result["violations_total"] > 0
    assert result["violations"].get("pair-bound", 0) > 0
    assert result["time_above_bound_fs"] > 0
    assert result["first_violations"]
    assert result["first_violations"][0]["invariant"] == "pair-bound"


def test_handled_faults_record_recoveries():
    results = run_campaign(
        builtin_specs(["link-flap", "partition-heal", "node-crash"], quick=True)
    )
    for name, result in results.items():
        assert result["violations_total"] == 0, name
        assert result["recovery"], name
        for stats in result["recovery"].values():
            assert stats["count"] >= 1
            assert stats["max_fs"] >= stats["mean_fs"] >= 0


@pytest.mark.slow
def test_full_campaign_acceptance_matrix():
    results = run_campaign(builtin_specs(), base_seed=0)
    assert len(results) >= 6
    for name, result in results.items():
        if name == "two-faced":
            assert result["violations_total"] > 0
        else:
            assert result["violations_total"] == 0, name
    digest_again = metrics_digest(run_campaign(builtin_specs(), base_seed=0))
    assert metrics_digest(results) == digest_again


# ----------------------------------------------------------------------
# Rendering and CLI
# ----------------------------------------------------------------------
def test_render_ends_with_campaign_digest():
    results = run_campaign(builtin_specs(["baseline"], quick=True))
    lines = render_campaign(results)
    assert lines[-1] == f"campaign sha256: {metrics_digest(results)}"
    assert any("baseline" in line for line in lines[:-1])


def test_cli_list(capsys):
    from repro.faultlab.scenarios import FABRIC_SCENARIOS, LINKHEALTH_SCENARIOS

    assert faultlab_main(["--list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out[: len(BUILTIN_SCENARIOS)] == list(BUILTIN_SCENARIOS)
    fabric_end = len(BUILTIN_SCENARIOS) + len(FABRIC_SCENARIOS)
    assert out[len(BUILTIN_SCENARIOS) : fabric_end] == [
        f"{name}  (fabric-scale; by explicit name only)"
        for name in FABRIC_SCENARIOS
    ]
    assert out[fabric_end:] == [
        f"{name}  (link supervision; by explicit name only)"
        for name in LINKHEALTH_SCENARIOS
    ]


def test_cli_json_output_is_deterministic(capsys):
    assert faultlab_main(["--quick", "--seed", "3", "baseline", "--json"]) == 0
    first = capsys.readouterr().out
    assert faultlab_main(["--quick", "--seed", "3", "baseline", "--json"]) == 0
    second = capsys.readouterr().out
    assert first == second
    parsed = json.loads(first)
    assert set(parsed) == {"baseline"}
    assert parsed["baseline"]["violations_total"] == 0


def test_cli_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        faultlab_main(["volcano"])


def test_umbrella_cli_dispatches(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["faultlab", "--list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out[: len(BUILTIN_SCENARIOS)] == list(BUILTIN_SCENARIOS)
