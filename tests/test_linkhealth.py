"""Link supervision (``repro.linkhealth``): FSM, gate, rejoin, identity.

The acceptance matrix for the self-healing-links subsystem:

* every flapped link in the ``flap-storm`` scenario deterministically
  traverses DOWN -> RECONNECTING -> RESYNC -> UP, visible as
  ``EV_LINK_*`` trace events;
* the 4TD checker records zero violations across a >= 10-seed sweep
  (rejoining links are edge-quarantined until their clean-interval
  handshake completes, so mid-recovery data never pollutes the bound);
* all three backends (scalar, batched, sharded) replay the recovery
  byte-identically — results, telemetry digests, and artifact trees;
* the nine builtin scenarios with supervision enabled but no faults
  active are byte-identical across backends (the supervisor is silent
  on a healthy link);
* the claim-based :class:`~repro.linkhealth.gate.LinkGate` reproduces
  the legacy fault semantics exactly while arbitrating between faults
  and the recovery FSM.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dtp.network import DtpNetwork
from repro.dtp.port import PortState
from repro.faultlab.campaign import run_scenario
from repro.faultlab.invariants import InvariantChecker
from repro.faultlab.scenarios import (
    BUILTIN_SCENARIOS,
    LINKHEALTH_SCENARIOS,
    builtin_specs,
)
from repro.linkhealth import (
    ADMIN_CLAIM,
    LinkGate,
    LinkHealthConfig,
    linkhealth_config_from_value,
)
from repro.network.topology import chain
from repro.sim import units
from repro.telemetry import Telemetry
from repro.telemetry.events import (
    EV_LINK_RECONNECT,
    EV_LINK_RELEASE,
    EV_LINK_RESYNC,
    EV_LINK_STATE,
    LINK_STATE_CODES,
)

STATE_NAMES = LINK_STATE_CODES  # EV_LINK_STATE ``a`` -> state name


def canon(result) -> str:
    return json.dumps(result, sort_keys=True)


def tree(root: Path):
    """{relative path: bytes} for every file under ``root``."""
    return {
        str(p.relative_to(root)): p.read_bytes()
        for p in sorted(root.rglob("*"))
        if p.is_file()
    }


def link_events(telemetry: Telemetry, link: str):
    """The (kind, a, b) trace records for one supervised link, in order."""
    tracer = telemetry.tracer
    sid = tracer.subject_id(f"link/{link}")
    return [
        (kind, a, b)
        for (_, kind, subject, a, b) in tracer.records
        if subject == sid
    ]


# ----------------------------------------------------------------------
# Recovery FSM traversal (the tentpole's determinism contract)
# ----------------------------------------------------------------------
class TestRecoveryTraversal:
    def run_storm(self, seed=1):
        spec = builtin_specs(["flap-storm"], quick=True)[0]
        telemetry = Telemetry()
        result = run_scenario(dict(spec), seed=seed, telemetry=telemetry)
        return spec, telemetry, result

    def test_every_flapped_link_walks_the_fsm(self):
        spec, telemetry, result = self.run_storm()
        flapped = ["-".join(pair) for pair in spec["faults"][0]["links"]]
        for link in flapped:
            states = [
                STATE_NAMES[a]
                for (kind, a, _) in link_events(telemetry, link)
                if kind == EV_LINK_STATE
            ]
            # Each storm round is one full arc; rounds repeat verbatim.
            assert states, f"{link} emitted no EV_LINK_STATE events"
            arc = ["down", "reconnecting", "resync", "up"]
            flaps = spec["faults"][0]["flaps"]
            assert states == arc * flaps

    def test_reconnect_resync_release_events_present(self):
        spec, telemetry, result = self.run_storm()
        for link in ("n1-n2", "n3-n4"):
            kinds = [kind for (kind, _, _) in link_events(telemetry, link)]
            assert EV_LINK_RECONNECT in kinds
            assert EV_LINK_RESYNC in kinds
            assert EV_LINK_RELEASE in kinds

    def test_release_only_after_clean_interval_count(self):
        _, telemetry, _ = self.run_storm()
        config = LinkHealthConfig()
        events = link_events(telemetry, "n1-n2")
        for i, (kind, a, b) in enumerate(events):
            if kind != EV_LINK_RELEASE:
                continue
            # The resync progress ticks leading into a release must have
            # counted all the way up to the configured clean-window count.
            resyncs = [e for e in events[:i] if e[0] == EV_LINK_RESYNC]
            assert resyncs, "release without any resync progress"
            last = resyncs[-1]
            assert last[1] == last[2] == config.resync_clean_intervals

    def test_healthy_links_stay_silent(self):
        spec, telemetry, result = self.run_storm()
        for link in ("n0-n1", "n2-n3", "n4-n5"):
            assert link_events(telemetry, link) == []
            summary = result["linkhealth"]["links"][link]
            assert summary == {
                "state": "up",
                "downs": 0,
                "reconnect_attempts": 0,
                "resyncs": 0,
                "releases": 0,
            }

    def test_summary_counts_match_trace(self):
        spec, telemetry, result = self.run_storm()
        for link in ("n1-n2", "n3-n4"):
            events = link_events(telemetry, link)
            summary = result["linkhealth"]["links"][link]
            assert summary["state"] == "up"
            assert summary["downs"] == sum(
                1
                for (kind, a, _) in events
                if kind == EV_LINK_STATE and STATE_NAMES[a] == "down"
            )
            assert summary["releases"] == sum(
                1 for (kind, _, _) in events if kind == EV_LINK_RELEASE
            )

    def test_same_seed_identical_event_stream(self):
        _, first, _ = self.run_storm(seed=3)
        _, second, _ = self.run_storm(seed=3)
        assert first.trace_digest() == second.trace_digest()


@pytest.mark.parametrize("seed", range(10))
def test_flap_storm_seed_sweep_clean(seed):
    """>= 10-seed sweep: zero 4TD violations, every flapped link rejoins,
    and the sharded replay stays byte-identical at every seed."""
    spec = builtin_specs(["flap-storm"], quick=True)[0]
    result = run_scenario(dict(spec), seed=seed)
    sharded = run_scenario(
        dict(spec), seed=seed, backend="sharded", shards=2,
        shard_transport="inline",
    )
    assert canon(sharded) == canon(result)
    assert result["violations_total"] == 0
    assert result["all_synchronized"] == 1
    for link in ("n1-n2", "n3-n4"):
        summary = result["linkhealth"]["links"][link]
        assert summary["state"] == "up"
        assert summary["downs"] >= 1
        assert summary["resyncs"] >= 1
        assert summary["releases"] == summary["downs"]


@pytest.mark.parametrize("name", sorted(LINKHEALTH_SCENARIOS))
def test_linkhealth_scenarios_are_clean(name):
    """signal-loss and ber-ramp also recover with zero violations."""
    spec = builtin_specs([name], quick=True)[0]
    result = run_scenario(dict(spec), seed=1)
    assert result["violations_total"] == 0
    assert result["all_synchronized"] == 1
    faulted = result["linkhealth"]["links"]["n0-n1" if name != "flap-storm"
                                            else "n1-n2"]
    assert faulted["state"] == "up"
    assert faulted["downs"] >= 1


# ----------------------------------------------------------------------
# Cross-backend byte-identity (linkhealth-smoke's in-tree twin)
# ----------------------------------------------------------------------
class TestBackendIdentity:
    def run_backends(self, name, tmp_path, seed=1):
        spec = builtin_specs([name], quick=True)[0]
        out = {}
        for backend in ("scalar", "batched", "sharded"):
            base = tmp_path / backend
            kwargs = dict(
                seed=seed,
                trace_dir=str(base / "trace"),
                metrics_dir=str(base / "metrics"),
                flight_dir=str(base / "flight"),
                backend=backend,
            )
            if backend == "sharded":
                kwargs.update(shards=2, shard_transport="inline")
            out[backend] = (run_scenario(dict(spec), **kwargs), base)
        return out

    @pytest.mark.parametrize("name", ["flap-storm", "signal-loss"])
    def test_all_backends_identical(self, name, tmp_path):
        out = self.run_backends(name, tmp_path)
        scalar_result, scalar_base = out["scalar"]
        assert "telemetry" in scalar_result  # digests actually compared
        for backend in ("batched", "sharded"):
            result, base = out[backend]
            assert canon(result) == canon(scalar_result), backend
            assert tree(base) == tree(scalar_base), backend

    def test_ber_ramp_scalar_batched_identical(self, tmp_path):
        """ber-ramp's cross-backend contract is scalar == batched only.

        Its high-BER step makes the *unfaulted* neighbor link n1-n2
        dip and recover — an emergent supervised incident the fault pin
        rules cannot foresee, so on a 2-shard cut that supervisor is
        dormant and the sharded run diverges (docs/LINKHEALTH.md,
        "Sharding and dormant supervisors").
        """
        spec = builtin_specs(["ber-ramp"], quick=True)[0]
        out = {}
        for backend in ("scalar", "batched"):
            base = tmp_path / backend
            out[backend] = (
                run_scenario(
                    dict(spec),
                    seed=1,
                    backend=backend,
                    trace_dir=str(base / "trace"),
                    metrics_dir=str(base / "metrics"),
                ),
                base,
            )
        assert canon(out["batched"][0]) == canon(out["scalar"][0])
        assert tree(out["batched"][1]) == tree(out["scalar"][1])
        # The emergent neighbor incident is real in both.
        summary = out["scalar"][0]["linkhealth"]["links"]["n1-n2"]
        assert summary["downs"] == 1 and summary["state"] == "up"

    def test_serial_event_order_replayed(self, tmp_path):
        """EV_LINK_* records appear in identical serial order everywhere."""
        spec = builtin_specs(["flap-storm"], quick=True)[0]
        streams = {}
        for backend in ("scalar", "batched", "sharded"):
            telemetry = Telemetry()
            kwargs = dict(seed=1, telemetry=telemetry, backend=backend)
            if backend == "sharded":
                kwargs.update(shards=2, shard_transport="inline")
            run_scenario(dict(spec), **kwargs)
            streams[backend] = [
                record
                for record in telemetry.tracer.records
                if record[1]
                in (EV_LINK_STATE, EV_LINK_RECONNECT, EV_LINK_RESYNC,
                    EV_LINK_RELEASE)
            ]
        assert streams["scalar"]  # the FSM actually traced
        assert streams["batched"] == streams["scalar"]
        assert streams["sharded"] == streams["scalar"]


@pytest.mark.parametrize("name", list(BUILTIN_SCENARIOS))
def test_builtins_supervised_but_idle_identical(name, tmp_path):
    """Nine builtins, faults stripped, supervision on: all backends agree.

    With no faults active every supervisor is watchdog-armed but silent,
    so the sharded backend's dormant-supervisor identity argument (and
    the batched eligibility hook) must not perturb a single byte.
    """
    spec = builtin_specs([name], quick=True)[0]
    spec["faults"] = []
    spec["linkhealth"] = True
    out = {}
    for backend in ("scalar", "batched", "sharded"):
        base = tmp_path / backend
        kwargs = dict(
            seed=0,
            trace_dir=str(base / "trace"),
            metrics_dir=str(base / "metrics"),
            backend=backend,
        )
        if backend == "sharded":
            kwargs.update(shards=2, shard_transport="inline")
        out[backend] = (run_scenario(dict(spec), **kwargs), base)
    scalar_result, scalar_base = out["scalar"]
    assert scalar_result["violations_total"] == 0
    for link, summary in scalar_result["linkhealth"]["links"].items():
        assert summary["downs"] == 0, link
    for backend in ("batched", "sharded"):
        result, base = out[backend]
        assert canon(result) == canon(scalar_result), backend
        assert tree(base) == tree(scalar_base), backend


# ----------------------------------------------------------------------
# The unified link gate (satellite: one API for all link-state writers)
# ----------------------------------------------------------------------
class TestLinkGate:
    def net(self, sim, streams, hosts=3):
        network = DtpNetwork(sim, chain(hosts), streams)
        network.start()
        sim.run_until(200 * units.US)
        return network

    def test_network_routes_through_gate(self, sim, streams):
        network = self.net(sim, streams)
        assert isinstance(network.gate, LinkGate)
        network.down_link("n0", "n1")
        assert network.gate.holds("n0", "n1") == frozenset({ADMIN_CLAIM})
        assert not network.link_is_up("n0", "n1")
        network.up_link("n0", "n1")
        assert network.gate.holds("n0", "n1") == frozenset()
        assert network.link_is_up("n0", "n1")

    def test_overlapping_claims_keep_link_down(self, sim, streams):
        network = self.net(sim, streams)
        gate = network.gate
        gate.claim_down("n0", "n1", "fault-a")
        gate.claim_down("n0", "n1", "fault-b")
        gate.release_up("n0", "n1", "fault-a")
        # fault-b still owns the down; the ports must not have been raised.
        assert gate.holds("n0", "n1") == frozenset({"fault-b"})
        assert network.ports[("n0", "n1")].state is PortState.DOWN
        gate.release_up("n0", "n1", "fault-b")
        assert network.ports[("n0", "n1")].state is not PortState.DOWN

    def test_legacy_up_without_down_still_raises(self, sim, streams):
        """NodeCrash restart semantics: up_link with no prior claim."""
        network = self.net(sim, streams)
        network.ports[("n0", "n1")].link_down()
        network.ports[("n1", "n0")].link_down()
        network.up_link("n0", "n1")  # no claim was ever registered
        assert network.ports[("n0", "n1")].state is not PortState.DOWN

    def test_admin_claim_is_shared(self, sim, streams):
        """Two overlapping legacy faults: first heal re-raises the link."""
        network = self.net(sim, streams)
        network.down_link("n0", "n1")
        network.down_link("n0", "n1")  # second fault, same shared claim
        network.up_link("n0", "n1")
        assert network.link_is_up("n0", "n1")

    def test_signal_loss_is_directional(self, sim, streams):
        network = self.net(sim, streams)
        gate = network.gate
        gate.signal_loss("n0", "n1")
        assert gate.direction_dark("n0", "n1")
        assert not gate.direction_dark("n1", "n0")
        # Port state untouched: the dark TX is invisible to the sender.
        assert network.ports[("n0", "n1")].state is not PortState.DOWN
        assert network.ports[("n0", "n1")].tx_allow("beacon", sim.now) is False
        gate.signal_restore("n0", "n1")
        assert not gate.direction_dark("n0", "n1")

    def test_signal_restore_preserves_prior_tx_gate(self, sim, streams):
        network = self.net(sim, streams)
        port = network.ports[("n0", "n1")]
        sentinel = lambda mtype, now: True  # noqa: E731
        port.tx_allow = sentinel
        network.gate.signal_loss("n0", "n1")
        network.gate.signal_restore("n0", "n1")
        assert port.tx_allow is sentinel


# ----------------------------------------------------------------------
# Edge quarantine in the invariant checker (rejoin handshake target)
# ----------------------------------------------------------------------
class TestEdgeQuarantine:
    def setup_net(self, sim, streams):
        network = DtpNetwork(sim, chain(3), streams)
        checker = InvariantChecker(network)
        network.start()
        sim.run_until(300 * units.US)
        return network, checker

    def test_quarantined_edge_leaves_sync_subgraph(self, sim, streams):
        network, checker = self.setup_net(sim, streams)
        adjacency = checker._sync_adjacency()
        assert "n1" in adjacency["n0"]
        checker.quarantine_edge("n0", "n1", "linkhealth")
        adjacency = checker._sync_adjacency()
        assert "n1" not in adjacency["n0"]
        assert "n0" not in adjacency["n1"]
        # The rest of the graph is untouched.
        assert "n2" in adjacency["n1"]

    def test_release_restores_the_edge(self, sim, streams):
        network, checker = self.setup_net(sim, streams)
        checker.quarantine_edge("n1", "n0", "linkhealth")  # order-insensitive
        checker.release_edge("n0", "n1", "linkhealth")
        assert "n1" in checker._sync_adjacency()["n0"]

    def test_unknown_node_rejected(self, sim, streams):
        network, checker = self.setup_net(sim, streams)
        with pytest.raises(KeyError):
            checker.quarantine_edge("n0", "zz", "linkhealth")

    def test_quarantine_is_trace_silent(self, sim, streams):
        network, checker = self.setup_net(sim, streams)
        checker.quarantine_edge("n0", "n1", "linkhealth")
        checker.release_edge("n0", "n1", "linkhealth")
        # No telemetry attached — and by contract the edge quarantine
        # never records events even when a tracer is present (the
        # supervisor's EV_LINK_* stream already covers the transition).
        assert checker._tracer is None


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestConfig:
    def test_true_gives_defaults(self):
        config = linkhealth_config_from_value(True)
        assert config == LinkHealthConfig()

    def test_dict_overrides(self):
        config = linkhealth_config_from_value({"watchdog_beacons": 8})
        assert config.watchdog_beacons == 8
        assert config.resync_clean_intervals == (
            LinkHealthConfig().resync_clean_intervals
        )

    def test_unknown_key_rejected(self):
        with pytest.raises(Exception):
            linkhealth_config_from_value({"no_such_knob": 1})
