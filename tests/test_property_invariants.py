"""Property-based tests of DTP's core invariants (hypothesis).

The invariants under random skews, cable lengths, and beacon intervals:

1. global counters are strictly monotonic;
2. adjacent nodes stay within 4 ticks once synchronized;
3. nobody outruns the fastest oscillator by more than the OWD slack;
4. the message codec is lossless for every counter value.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.network.link import Cable
from repro.network.topology import Topology
from repro.sim import units
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def build_pair(ppm_a, ppm_b, length_m, beacon_interval, seed):
    sim = Simulator()
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    topo.add_link("a", "b", Cable(length_m=length_m))
    net = DtpNetwork(
        sim,
        topo,
        RandomStreams(seed),
        config=DtpPortConfig(beacon_interval_ticks=beacon_interval),
        skews={"a": ConstantSkew(ppm_a), "b": ConstantSkew(ppm_b)},
    )
    net.start()
    return sim, net


@given(
    ppm_a=st.floats(min_value=-100.0, max_value=100.0),
    ppm_b=st.floats(min_value=-100.0, max_value=100.0),
    length_m=st.floats(min_value=1.0, max_value=50.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=15, deadline=None)
def test_property_two_nodes_synchronize_within_five_ticks(
    ppm_a, ppm_b, length_m, seed
):
    """Any in-spec pair ends up within the direct bound.

    (5 rather than 4: arbitrary cable lengths add a fractional-tick phase
    the paper's integer-delay analysis does not model; see Cable.)
    """
    sim, net = build_pair(ppm_a, ppm_b, length_m, 200, seed)
    sim.run_until(units.MS)
    worst = 0
    t = sim.now
    for _ in range(40):
        t += 20 * units.US
        sim.run_until(t)
        worst = max(worst, abs(net.pair_offset("a", "b", t)))
    assert worst <= 5


@given(
    ppm_a=st.floats(min_value=-100.0, max_value=100.0),
    ppm_b=st.floats(min_value=-100.0, max_value=100.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=10, deadline=None)
def test_property_global_counters_strictly_monotonic(ppm_a, ppm_b, seed):
    sim, net = build_pair(ppm_a, ppm_b, 10.24, 200, seed)
    previous = {"a": -1, "b": -1}
    t = 0
    while t < 2 * units.MS:
        t += 37 * units.US
        sim.run_until(t)
        for name in ("a", "b"):
            current = net.counter_of(name, t)
            assert current > previous[name]
            previous[name] = current


@given(
    ppm_fast=st.floats(min_value=0.0, max_value=100.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=10, deadline=None)
def test_property_network_never_outruns_fastest_clock(ppm_fast, seed):
    """With alpha = 3, the network counter tracks the fastest oscillator:
    over any window its gain never exceeds the fast clock's tick gain."""
    sim, net = build_pair(ppm_fast, -50.0, 10.24, 200, seed)
    sim.run_until(units.MS)
    fast = net.devices["a"]
    start_t = sim.now
    start_gc = fast.global_counter(start_t)
    start_ticks = fast.oscillator.ticks_at(start_t)
    sim.run_until(start_t + 3 * units.MS)
    gc_gain = fast.global_counter(sim.now) - start_gc
    tick_gain = fast.oscillator.ticks_at(sim.now) - start_ticks
    assert gc_gain <= tick_gain


@given(
    interval=st.integers(min_value=100, max_value=4000),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=10, deadline=None)
def test_property_any_interval_under_4000_keeps_bound(interval, seed):
    """Section 3.3: any beacon interval below ~4000 ticks gives <= 4."""
    sim, net = build_pair(100.0, -100.0, 10.24, interval, seed)
    sim.run_until(units.MS)
    worst = 0
    t = sim.now
    for _ in range(40):
        t += 25 * units.US
        sim.run_until(t)
        worst = max(worst, abs(net.pair_offset("a", "b", t)))
    assert worst <= 4
