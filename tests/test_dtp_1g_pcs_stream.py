"""Unit tests for DTP-over-1G ordered sets and the Clause 49 block stream."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.blocks import idle_block
from repro.phy.dtp_1g import (
    Dtp1GError,
    SETS_PER_MESSAGE,
    decode_interframe_gap,
    encode_interframe_gap,
    reassemble_message,
    segment_message,
)
from repro.phy.encoding_8b10b import Decoder8b10b, Encoder8b10b, K28_1
from repro.phy.pcs_stream import (
    PcsStreamError,
    PcsTransmitStream,
    decode_blocks,
    encode_frame,
    receive_stream,
)
from repro.phy.scrambler import Scrambler


class TestDtp1G:
    def test_segmentation_roundtrip(self):
        message = (0b010 << 53) | 0xABCDE12345
        assert reassemble_message(segment_message(message)) == message

    def test_seven_sets_per_message(self):
        assert len(segment_message(0)) == SETS_PER_MESSAGE

    def test_sets_lead_with_k28_1(self):
        for lead, _payload in segment_message(12345):
            assert lead == K28_1

    def test_oversized_message_rejected(self):
        with pytest.raises(Dtp1GError):
            segment_message(1 << 56)

    def test_wrong_set_count_rejected(self):
        with pytest.raises(Dtp1GError):
            reassemble_message(segment_message(5)[:-1])

    def test_wire_roundtrip_with_idles(self):
        message = (0b011 << 53) | 987654321
        groups = encode_interframe_gap(message, idle_sets=5, encoder=Encoder8b10b())
        decoded, idles = decode_interframe_gap(groups, Decoder8b10b())
        assert decoded == message
        assert idles == 5

    def test_pure_idle_gap(self):
        groups = encode_interframe_gap(None, idle_sets=4, encoder=Encoder8b10b())
        decoded, idles = decode_interframe_gap(groups, Decoder8b10b())
        assert decoded is None
        assert idles == 4

    def test_odd_group_count_rejected(self):
        groups = encode_interframe_gap(None, idle_sets=1, encoder=Encoder8b10b())
        with pytest.raises(Dtp1GError):
            decode_interframe_gap(groups[:-1], Decoder8b10b())


class TestPcsStream:
    def test_frame_roundtrip(self):
        frame = bytes(range(100))
        blocks = encode_frame(frame)
        items = decode_blocks(blocks)
        assert len(items) == 1
        assert items[0].kind == "frame"
        assert items[0].frame == frame

    def test_frame_sizes_edge_cases(self):
        """Every remainder 0..7 hits a different TERMINATE type."""
        for size in range(8, 40):
            frame = bytes(i & 0xFF for i in range(size))
            items = decode_blocks(encode_frame(frame))
            assert items[0].frame == frame

    def test_block_count_matches_frame_geometry(self):
        # 1530 wire bytes: 1 START(7) + 190 data(1520) + TERMINATE(3).
        frame = bytes(1530)
        blocks = encode_frame(frame)
        assert len(blocks) == 192

    def test_tiny_frame_rejected(self):
        with pytest.raises(PcsStreamError):
            encode_frame(b"short")

    def test_data_block_outside_frame_rejected(self):
        from repro.phy.blocks import data_block

        with pytest.raises(PcsStreamError):
            decode_blocks([data_block(b"12345678")])

    def test_multiplexed_stream(self):
        tx = PcsTransmitStream()
        message = (0b010 << 53) | 777
        tx.queue_dtp(message)
        frame_a = bytes(range(64))
        frame_b = bytes(range(64, 160))
        tx.send_frame(frame_a)
        tx.send_frame(frame_b)
        tx.send_idle(2)
        frames, messages, mac_view = receive_stream(tx.blocks)
        assert frames == [frame_a, frame_b]
        assert messages == [message]
        assert tx.pending_messages == 0

    def test_mac_view_has_pristine_idles(self):
        """Section 4.2: higher layers never see DTP's bits."""
        tx = PcsTransmitStream()
        tx.queue_dtp(12345)
        tx.send_idle(3)
        _, _, mac_view = receive_stream(tx.blocks)
        for block in mac_view:
            assert block == idle_block()

    def test_dtp_waits_for_idle_slot(self):
        tx = PcsTransmitStream()
        tx.send_frame(bytes(64))  # frame + its mandatory idle
        tx.queue_dtp(42)
        assert tx.pending_messages == 1
        tx.send_idle(1)
        assert tx.pending_messages == 0

    def test_stream_through_scrambler(self):
        """Full wire model: blocks -> scrambled payloads -> descrambled."""
        tx = PcsTransmitStream()
        message = 424242
        tx.queue_dtp(message)
        frame = bytes(range(80))
        tx.send_frame(frame)
        scrambler = Scrambler(state=99)
        descrambler = Scrambler(state=99)
        from repro.phy.blocks import Block66

        wire = [
            Block66(sync=b.sync, payload=scrambler.scramble_word(b.payload))
            for b in tx.blocks
        ]
        recovered = [
            Block66(sync=b.sync, payload=descrambler.descramble_word(b.payload))
            for b in wire
        ]
        frames, messages, _ = receive_stream(recovered)
        assert frames == [frame]
        assert messages == [message]


@given(
    payload=st.binary(min_size=8, max_size=200),
    message=st.one_of(st.none(), st.integers(min_value=1, max_value=(1 << 56) - 1)),
)
@settings(max_examples=50, deadline=None)
def test_property_stream_roundtrip(payload, message):
    tx = PcsTransmitStream()
    if message is not None:
        tx.queue_dtp(message)
    tx.send_frame(payload)
    frames, messages, _ = receive_stream(tx.blocks)
    assert frames == [payload]
    assert messages == ([message] if message is not None else [])
