"""The task supervisor: timeouts, retries, respawn, quarantine, taxonomy."""

import os

import pytest

from repro.experiments.parallel import (
    ExperimentTask,
    default_jobs,
    run_tasks,
)
from repro.resilience import (
    FAILURE_CRASH,
    FAILURE_EXCEPTION,
    FAILURE_QUARANTINED,
    FAILURE_TIMEOUT,
    SupervisorPolicy,
    backoff_slots,
    run_supervised,
)

# ----------------------------------------------------------------------
# Module-level task callables (workers need picklable functions)
# ----------------------------------------------------------------------


def _square(x, offset=0):
    return x * x + offset


def _crash_unless_sentinel(sentinel, value):
    """os._exit(1) on the first run; succeed once the sentinel exists."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(1)
    return value


def _always_crash(value):
    os._exit(1)


def _always_raise(value):
    raise ValueError(f"boom {value}")


def _raise_unless_sentinel(sentinel, value):
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        raise RuntimeError("transient")
    return value


def _hang(value):
    import time

    time.sleep(60)
    return value


def _raise_marked(marker_dir, index):
    with open(os.path.join(marker_dir, f"ran-{index}"), "w"):
        pass
    if index == 0:
        raise ValueError("first task fails")
    import time

    time.sleep(0.2)
    return index


def _tasks(n=5):
    return [ExperimentTask(f"t{i}", _square, (i,)) for i in range(n)]


# ----------------------------------------------------------------------
# Happy path: supervision must not change results
# ----------------------------------------------------------------------
class TestSupervisedHappyPath:
    def test_results_in_task_order(self):
        run = run_supervised(_tasks(), jobs=2)
        assert run.results == [i * i for i in range(5)]
        assert run.ok
        assert run.failures == []
        assert run.respawns == 0

    def test_matches_run_tasks(self):
        assert run_supervised(_tasks(), jobs=2).results == run_tasks(
            _tasks(), jobs=1
        )

    def test_named_results_ordered(self):
        named = run_supervised(_tasks(3), jobs=2).named_results()
        assert list(named) == ["t0", "t1", "t2"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_supervised(
                [ExperimentTask("a", _square, (1,)),
                 ExperimentTask("a", _square, (2,))]
            )

    def test_jobs_one_still_supervised(self):
        # jobs=1 uses a single-worker pool, so crash/hang protection holds.
        run = run_supervised(_tasks(3), jobs=1)
        assert run.results == [0, 1, 4]


# ----------------------------------------------------------------------
# Worker crash: respawn + retry (satellite: os._exit(1) mid-pool)
# ----------------------------------------------------------------------
class TestWorkerCrash:
    def test_crash_respawns_and_retries(self, tmp_path):
        sentinel = str(tmp_path / "crash.sentinel")
        tasks = [ExperimentTask("crashy", _crash_unless_sentinel, (sentinel, 41))]
        tasks += _tasks(4)
        run = run_supervised(tasks, jobs=2, policy=SupervisorPolicy())
        # The campaign survives the dead worker and returns ordered results.
        assert run.results == [41, 0, 1, 4, 9]
        assert run.ok
        assert run.respawns >= 1
        assert any(f.kind == FAILURE_CRASH for f in run.failures)

    def test_crash_results_digest_stable(self, tmp_path):
        # Two runs (each crashing once) return identical ordered results.
        outcomes = []
        for attempt in ("a", "b"):
            sentinel = str(tmp_path / f"crash-{attempt}.sentinel")
            tasks = [
                ExperimentTask("crashy", _crash_unless_sentinel, (sentinel, 7))
            ] + _tasks(4)
            outcomes.append(run_supervised(tasks, jobs=2).results)
        assert outcomes[0] == outcomes[1] == [7, 0, 1, 4, 9]

    def test_poison_crash_quarantined(self):
        tasks = [ExperimentTask("poison", _always_crash, (1,))] + _tasks(3)
        run = run_supervised(
            tasks, jobs=2, policy=SupervisorPolicy(max_attempts=2)
        )
        assert run.quarantined == ["poison"]
        assert run.results[0] is None
        assert run.results[1:] == [0, 1, 4]
        kinds = [f.kind for f in run.failures if f.task == "poison"]
        assert kinds.count(FAILURE_CRASH) == 2
        assert kinds[-1] == FAILURE_QUARANTINED

    def test_respawn_budget_quarantines_rest(self):
        tasks = [ExperimentTask("poison", _always_crash, (1,))]
        run = run_supervised(
            tasks, jobs=1,
            policy=SupervisorPolicy(max_attempts=10, max_respawns=1),
        )
        assert run.quarantined == ["poison"]
        assert not run.ok


# ----------------------------------------------------------------------
# Exceptions and retries
# ----------------------------------------------------------------------
class TestExceptions:
    def test_transient_exception_retried(self, tmp_path):
        sentinel = str(tmp_path / "flaky.sentinel")
        tasks = [ExperimentTask("flaky", _raise_unless_sentinel, (sentinel, 5))]
        tasks += _tasks(2)
        run = run_supervised(tasks, jobs=2)
        assert run.results == [5, 0, 1]
        assert run.ok
        flaky = [f for f in run.failures if f.task == "flaky"]
        assert [f.kind for f in flaky] == [FAILURE_EXCEPTION]
        assert "transient" in flaky[0].detail

    def test_poison_exception_quarantined_with_report(self):
        tasks = [ExperimentTask("poison", _always_raise, (3,))] + _tasks(2)
        run = run_supervised(
            tasks, jobs=2, policy=SupervisorPolicy(max_attempts=2)
        )
        assert run.quarantined == ["poison"]
        report = run.report()
        assert report["record"] == "failure-report"
        assert report["tasks"] == 3
        assert report["completed"] == 2
        assert report["failed"] == 1
        assert report["failures_by_kind"] == {
            FAILURE_EXCEPTION: 2,
            FAILURE_QUARANTINED: 1,
        }
        assert report["quarantined"] == ["poison"]
        details = [f["detail"] for f in report["failures"]]
        assert any("ValueError: boom 3" in d for d in details)


# ----------------------------------------------------------------------
# Hangs: the wall-clock watchdog
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_hung_task_killed_and_quarantined(self):
        tasks = [ExperimentTask("hung", _hang, (7,))] + _tasks(3)
        run = run_supervised(
            tasks, jobs=2,
            policy=SupervisorPolicy(timeout_s=1.0, max_attempts=1),
        )
        # The hang is contained: every other task's result is intact.
        assert run.quarantined == ["hung"]
        assert run.results[1:] == [0, 1, 4]
        kinds = [f.kind for f in run.failures if f.task == "hung"]
        assert kinds == [FAILURE_TIMEOUT, FAILURE_QUARANTINED]
        assert run.respawns >= 1


# ----------------------------------------------------------------------
# Deterministic backoff
# ----------------------------------------------------------------------
class TestBackoff:
    def test_seed_stable(self):
        policy = SupervisorPolicy(base_seed=7, max_backoff_slots=4)
        slots = [backoff_slots(policy, "task", attempt) for attempt in (1, 2, 3)]
        assert slots == [
            backoff_slots(policy, "task", attempt) for attempt in (1, 2, 3)
        ]
        assert all(0 <= s <= 4 for s in slots)

    def test_varies_with_seed_and_name(self):
        a = [
            backoff_slots(SupervisorPolicy(base_seed=s, max_backoff_slots=100),
                          "task", 1)
            for s in range(20)
        ]
        assert len(set(a)) > 1

    def test_disabled(self):
        policy = SupervisorPolicy(max_backoff_slots=0)
        assert backoff_slots(policy, "task", 1) == 0


# ----------------------------------------------------------------------
# Satellites living in experiments.parallel
# ----------------------------------------------------------------------
class TestDefaultJobs:
    def test_respects_affinity(self, monkeypatch):
        if not hasattr(os, "sched_getaffinity"):
            pytest.skip("no sched_getaffinity on this platform")
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2})
        assert default_jobs() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        def _raises(pid):
            raise AttributeError

        monkeypatch.setattr(os, "sched_getaffinity", _raises, raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_jobs() == 5

    def test_at_least_one(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set())
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_jobs() >= 1


class TestRunTasksCleanup:
    def test_exception_cancels_pending_tasks(self, tmp_path):
        # Task 0 fails fast; with 2 workers and 20 queued 0.2 s tasks,
        # cancel_futures must keep most of the queue from ever running.
        marker_dir = str(tmp_path)
        tasks = [
            ExperimentTask(f"m{i}", _raise_marked, (marker_dir, i))
            for i in range(20)
        ]
        with pytest.raises(ValueError, match="first task fails"):
            run_tasks(tasks, jobs=2)
        ran = [name for name in os.listdir(marker_dir) if name.startswith("ran-")]
        assert len(ran) < 15
