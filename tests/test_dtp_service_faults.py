"""Tests for the clock-service facade and extended fault scenarios."""

import pytest

from repro.clocks.oscillator import ConstantSkew
from repro.dtp.faults import FlappingLink, oscillator_step
from repro.dtp.network import DtpNetwork
from repro.dtp.port import DtpPortConfig
from repro.dtp.service import DtpClockService
from repro.network.topology import chain, paper_testbed
from repro.sim import units


@pytest.fixture
def synced_pair(sim, streams):
    net = DtpNetwork(
        sim, chain(2), streams,
        config=DtpPortConfig(beacon_interval_ticks=1200),
    )
    net.start()
    sim.run_until(units.MS)
    return net


class TestClockService:
    def test_counter_tracks_network(self, sim, streams, synced_pair):
        service = DtpClockService(synced_pair, "n0")
        sim.run_until(8 * units.MS)
        estimate = service.get_counter()
        truth = synced_pair.devices["n0"].global_counter(sim.now)
        assert abs(estimate - truth) <= 100  # spikes included

    def test_time_ns_scales_counter(self, sim, streams, synced_pair):
        service = DtpClockService(synced_pair, "n0")
        sim.run_until(8 * units.MS)
        assert service.get_time_ns() == pytest.approx(
            service.get_counter() * 6.4, rel=1e-9
        )

    def test_precision_bound(self, sim, streams):
        net = DtpNetwork(sim, paper_testbed(), streams)
        net.start()
        sim.run_until(units.MS)
        service = DtpClockService(net, "S4")
        # D = 4 hops: (16 + 8) ticks * 6.4 ns.
        assert service.precision_bound_ns() == pytest.approx(153.6)

    def test_unknown_host_rejected(self, sim, streams, synced_pair):
        with pytest.raises(KeyError):
            DtpClockService(synced_pair, "nope")

    def test_utc_before_sync_is_none(self, sim, streams, synced_pair):
        service = DtpClockService(synced_pair, "n0")
        sim.run_until(5 * units.MS)
        assert service.get_utc_fs() is None

    def test_utc_master_slave_flow(self, sim, streams, synced_pair):
        master = DtpClockService(synced_pair, "n0")
        slave = DtpClockService(synced_pair, "n1", tsc_skew=ConstantSkew(4.0))
        sim.run_until(8 * units.MS)
        master.serve_utc(broadcast_interval_fs=5 * units.MS)
        slave.follow_utc(master)
        sim.run_until(40 * units.MS)
        utc = slave.get_utc_fs()
        assert utc is not None
        assert abs(utc - sim.now) < 500 * units.NS

    def test_follow_without_serving_raises(self, sim, streams, synced_pair):
        a = DtpClockService(synced_pair, "n0")
        b = DtpClockService(synced_pair, "n1")
        with pytest.raises(RuntimeError):
            b.follow_utc(a)


class TestFlappingLink:
    def test_sync_survives_flapping(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(units.MS)
        FlappingLink(
            net, "n0", "n1",
            down_every_fs=2 * units.MS,
            down_for_fs=200 * units.US,
            start_fs=2 * units.MS,
            flaps=4,
        )
        sim.run_until(12 * units.MS)
        assert net.all_synchronized()
        worst = 0
        t = sim.now
        for _ in range(100):
            t += 20 * units.US
            sim.run_until(t)
            worst = max(worst, net.max_abs_offset())
        assert worst <= 8

    def test_flap_counts(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        net.start()
        sim.run_until(units.MS)
        flapper = FlappingLink(
            net, "n0", "n1",
            down_every_fs=units.MS,
            down_for_fs=100 * units.US,
            start_fs=2 * units.MS,
            flaps=3,
        )
        sim.run_until(10 * units.MS)
        assert flapper.flap_count == 3

    def test_invalid_timing_rejected(self, sim, streams):
        net = DtpNetwork(sim, chain(2), streams)
        with pytest.raises(ValueError):
            FlappingLink(net, "n0", "n1", down_every_fs=100, down_for_fs=100)


class TestOscillatorStep:
    def test_step_changes_rate(self, sim, streams):
        net = DtpNetwork(
            sim, chain(2), streams,
            skews={"n0": ConstantSkew(0.0), "n1": ConstantSkew(0.0)},
        )
        net.start()
        oscillator_step(net, "n1", at_fs=2 * units.MS, new_ppm=80.0)
        sim.run_until(10 * units.MS)
        osc = net.devices["n1"].oscillator
        assert osc.period_at(9 * units.MS) < osc.period_at(0)

    def test_sync_rides_through_thermal_shock(self, sim, streams):
        net = DtpNetwork(
            sim, chain(2), streams,
            skews={"n0": ConstantSkew(0.0), "n1": ConstantSkew(-50.0)},
        )
        net.start()
        oscillator_step(net, "n1", at_fs=3 * units.MS, new_ppm=95.0)
        sim.run_until(4 * units.MS)
        worst = 0
        t = sim.now
        for _ in range(300):
            t += 20 * units.US
            sim.run_until(t)
            worst = max(worst, net.max_abs_offset())
        assert worst <= 4  # still in spec, still bounded
