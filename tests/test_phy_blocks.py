"""Unit and property tests for 64b/66b block handling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.blocks import (
    BLOCK_TYPE_IDLE,
    CONTROL_CHARS_PER_BLOCK,
    IDLE_CHAR,
    IDLE_PAYLOAD_BITS,
    Block66,
    BlockError,
    SYNC_CONTROL,
    SYNC_DATA,
    control_chars_to_payload,
    data_block,
    embed_bits_in_idle,
    extract_bits_from_idle,
    idle_block,
    payload_to_control_chars,
    restore_idle,
)


class TestBlock66:
    def test_roundtrip_int(self):
        block = Block66(sync=SYNC_DATA, payload=0x1122334455667788)
        assert Block66.from_int(block.to_int()) == block

    def test_sync_header_in_msbs(self):
        block = Block66(sync=SYNC_CONTROL, payload=0)
        assert block.to_int() >> 64 == SYNC_CONTROL

    def test_invalid_sync_rejected(self):
        with pytest.raises(BlockError):
            Block66(sync=0b00, payload=0)
        with pytest.raises(BlockError):
            Block66(sync=0b11, payload=0)

    def test_payload_width_enforced(self):
        with pytest.raises(BlockError):
            Block66(sync=SYNC_DATA, payload=1 << 64)

    def test_from_int_width_enforced(self):
        with pytest.raises(BlockError):
            Block66.from_int(1 << 66)

    def test_data_block_from_octets(self):
        block = data_block(b"\x01\x02\x03\x04\x05\x06\x07\x08")
        assert block.is_data
        assert block.payload == 0x0102030405060708

    def test_data_block_requires_eight_octets(self):
        with pytest.raises(BlockError):
            data_block(b"\x01\x02")

    def test_data_block_has_no_block_type(self):
        with pytest.raises(BlockError):
            _ = data_block(b"\x00" * 8).block_type


class TestIdleBlocks:
    def test_idle_block_structure(self):
        block = idle_block()
        assert block.is_control
        assert block.is_idle
        assert block.block_type == BLOCK_TYPE_IDLE

    def test_idle_block_chars_all_idle(self):
        _, chars = payload_to_control_chars(idle_block().payload)
        assert chars == [IDLE_CHAR] * CONTROL_CHARS_PER_BLOCK

    def test_control_chars_roundtrip(self):
        chars = [1, 2, 3, 4, 5, 6, 7, 8]
        payload = control_chars_to_payload(chars)
        block_type, decoded = payload_to_control_chars(payload)
        assert block_type == BLOCK_TYPE_IDLE
        assert decoded == chars

    def test_control_chars_width_enforced(self):
        with pytest.raises(BlockError):
            control_chars_to_payload([0x80] + [0] * 7)

    def test_control_chars_count_enforced(self):
        with pytest.raises(BlockError):
            control_chars_to_payload([0] * 7)


class TestDtpEmbedding:
    def test_embed_extract_roundtrip(self):
        bits = (0b101 << 53) | 0x1234567890ABC
        block = embed_bits_in_idle(bits)
        assert block.is_idle  # still parses as an idle control block
        assert extract_bits_from_idle(block) == bits

    def test_embedded_block_keeps_idle_type(self):
        block = embed_bits_in_idle((1 << 56) - 1)
        assert block.block_type == BLOCK_TYPE_IDLE

    def test_embed_rejects_oversized(self):
        with pytest.raises(BlockError):
            embed_bits_in_idle(1 << IDLE_PAYLOAD_BITS)

    def test_restore_idle_zeroes_characters(self):
        block = embed_bits_in_idle(0xDEADBEEF)
        restored = restore_idle(block)
        assert restored == idle_block()
        assert extract_bits_from_idle(restored) == 0

    def test_extract_from_data_block_rejected(self):
        with pytest.raises(BlockError):
            extract_bits_from_idle(data_block(b"\x00" * 8))


@given(bits=st.integers(min_value=0, max_value=(1 << 56) - 1))
@settings(max_examples=200, deadline=None)
def test_property_embed_extract_identity(bits):
    assert extract_bits_from_idle(embed_bits_in_idle(bits)) == bits


@given(chars=st.lists(st.integers(min_value=0, max_value=127), min_size=8, max_size=8))
@settings(max_examples=100, deadline=None)
def test_property_control_chars_roundtrip(chars):
    _, decoded = payload_to_control_chars(control_chars_to_payload(chars))
    assert decoded == chars
