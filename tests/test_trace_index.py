"""TraceIndex: bucketed/bisected queries over trace streams."""

import pytest

from repro.telemetry import Telemetry, TraceIndex, dump_flight, write_trace_jsonl
from repro.telemetry.events import EV_JUMP, EV_OWD, EV_RX, EV_TX
from repro.telemetry.trace import TraceRecorder


def _recorder():
    tracer = TraceRecorder(capacity=64)
    p01 = tracer.subject_id("n0->n1")
    p10 = tracer.subject_id("n1->n0")
    n0 = tracer.subject_id("n0")
    tracer.record(100, EV_TX, p01, 2, 77)
    tracer.record(150, EV_RX, p10, 2, 77)
    tracer.record(150, EV_JUMP, p10, 1, 1)
    tracer.record(200, EV_OWD, p10, 44, 3)
    tracer.record(300, EV_TX, p01, 2, 99)
    tracer.record(300, EV_TX, p01, 2, 99)  # co-timed duplicate
    tracer.record(400, EV_RX, n0, 0, 0)
    return tracer


def test_streams_and_counts():
    index = TraceIndex.from_recorder(_recorder())
    assert len(index) == 7
    assert index.counts_by_kind() == {EV_TX: 3, EV_RX: 2, EV_JUMP: 1, EV_OWD: 1}
    assert [r[0] for r in index.stream(EV_TX, "n0->n1")] == [100, 300, 300]
    assert index.stream(EV_TX, "nope") == []
    assert len(index.of_kind(EV_RX)) == 2


def test_subject_helpers():
    index = TraceIndex.from_recorder(_recorder())
    assert index.subject_id("n0->n1") == 0
    assert index.subject_id("ghost") is None
    assert index.subject_name(2) == "n0"
    assert index.subject_name(99) == "subject-99"
    assert index.port_subjects() == ["n0->n1", "n1->n0"]
    assert TraceIndex.port_node("n0->n1") == "n0"
    assert TraceIndex.port_peer("n0->n1") == "n1"
    assert TraceIndex.reverse_port("n0->n1") == "n1->n0"
    assert index.ports_of("n0") == ["n0->n1"]
    assert index.ports_of("n1") == ["n1->n0"]


def test_last_before_bisect_semantics():
    index = TraceIndex.from_recorder(_recorder())
    assert index.last_before(EV_TX, "n0->n1", 100) is None
    assert index.last_before(EV_TX, "n0->n1", 100, inclusive=True)[0] == 100
    assert index.last_before(EV_TX, "n0->n1", 250)[0] == 100
    assert index.last_before(EV_TX, "n0->n1", 10_000)[0] == 300
    assert index.last_before(EV_TX, "ghost", 10_000) is None


def test_at_and_match_queries():
    index = TraceIndex.from_recorder(_recorder())
    assert len(index.at(EV_TX, "n0->n1", 300)) == 2
    assert index.at(EV_TX, "n0->n1", 250) == []
    # Field-matched backward scan: payload 77 is the older record.
    record = index.last_match_before(EV_TX, "n0->n1", 10_000, a=2, b=77)
    assert record[0] == 100
    assert index.last_match_before(EV_TX, "n0->n1", 10_000, b=12345) is None


def test_accounting_and_describe():
    tracer = _recorder()
    index = TraceIndex.from_recorder(tracer)
    assert index.span_fs == (100, 400)
    assert index.recorded == 7
    assert index.dropped == 0
    lines = index.describe()
    assert any("records: 7 indexed" in line for line in lines)
    assert any("owd" in line for line in lines)


def test_ring_overflow_reports_dropped():
    tracer = TraceRecorder(capacity=4)
    sid = tracer.subject_id("n0->n1")
    for t in range(10):
        tracer.record(t, EV_TX, sid, 2, t)
    index = TraceIndex.from_recorder(tracer)
    assert len(index) == 4
    assert index.recorded == 10
    assert index.dropped == 6


def test_load_sniffs_trace_and_flight(tmp_path):
    telemetry = Telemetry(trace_capacity=64)
    tracer = telemetry.tracer
    sid = tracer.subject_id("n0->n1")
    tracer.record(5, EV_TX, sid, 2, 11)
    tracer.record(7, EV_RX, sid, 2, 13)

    trace_path = tmp_path / "x.trace.jsonl"
    write_trace_jsonl(str(trace_path), tracer)
    from_trace = TraceIndex.load(str(trace_path))
    assert from_trace.records == [(5, EV_TX, 0, 2, 11), (7, EV_RX, 0, 2, 13)]
    assert from_trace.subjects == ["n0->n1"]

    flight_path = tmp_path / "x.flight.jsonl"
    dump_flight(str(flight_path), telemetry, "x", 3, 7, context={})
    from_flight = TraceIndex.load(str(flight_path))
    assert from_flight.records == from_trace.records
    assert from_flight.recorded == 2
    assert from_flight.header["scenario"] == "x"


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "nope.jsonl"
    path.write_text("not json\n")
    with pytest.raises(ValueError):
        TraceIndex.load(str(path))
