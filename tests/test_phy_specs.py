"""Unit tests for PHY specs (paper Table 2)."""

import pytest

from repro.phy.specs import (
    COMMON_COUNTER_UNIT_FS,
    PHY_1G,
    PHY_10G,
    PHY_40G,
    PHY_100G,
    SPECS,
    spec_for,
)
from repro.sim import units


def test_table2_periods():
    assert PHY_1G.period_ns == pytest.approx(8.0)
    assert PHY_10G.period_ns == pytest.approx(6.4)
    assert PHY_40G.period_ns == pytest.approx(1.6)
    assert PHY_100G.period_ns == pytest.approx(0.64)


def test_table2_increments():
    assert PHY_1G.counter_increment == 25
    assert PHY_10G.counter_increment == 20
    assert PHY_40G.counter_increment == 5
    assert PHY_100G.counter_increment == 2


def test_increment_times_common_unit_equals_period():
    for spec in SPECS.values():
        assert spec.counter_increment * COMMON_COUNTER_UNIT_FS == spec.period_fs


def test_encodings():
    assert PHY_1G.encoding == "8b/10b"
    assert all(SPECS[name].encoding == "64b/66b" for name in ("10G", "40G", "100G"))


def test_frequencies_match_periods():
    for spec in SPECS.values():
        assert units.SEC / spec.frequency_hz == pytest.approx(spec.period_fs, rel=1e-9)


def test_spec_lookup():
    assert spec_for("10G") is PHY_10G
    with pytest.raises(KeyError):
        spec_for("25G")


def test_blocks_for_bytes_10g():
    # 1530 wire bytes (MTU + preamble) -> 192 blocks of 8 payload bytes.
    assert PHY_10G.blocks_for_bytes(1530) == 192


def test_blocks_for_bytes_1g():
    # 8b/10b carries one byte per block.
    assert PHY_1G.blocks_for_bytes(100) == 100


def test_ticks_for_duration_ceils():
    assert PHY_10G.ticks_for_duration(1) == 1
    assert PHY_10G.ticks_for_duration(PHY_10G.period_fs) == 1
    assert PHY_10G.ticks_for_duration(PHY_10G.period_fs + 1) == 2


def test_bytes_per_tick():
    assert PHY_10G.bytes_per_tick() == pytest.approx(4.0)
    assert PHY_100G.bytes_per_tick() == pytest.approx(8.0)
