"""Causal jump explanation: hop-by-hop beacon chains rebuilt from traces."""

from repro.faultlab import run_scenario
from repro.insight import (
    explain_flight,
    explain_jump,
    explain_violation,
    render_explanation,
)
from repro.sim import units
from repro.telemetry import Telemetry, TraceIndex, load_flight
from repro.telemetry.events import EV_JUMP, EV_VIOLATION


def _two_faced_spec(duration_us=600):
    return {
        "name": "two-faced",
        "topology": {"kind": "chain", "hosts": 3},
        "duration_fs": duration_us * units.US,
        "faults": [
            {
                "kind": "two-faced",
                "node": "n0",
                "victim": "n1",
                "lie_ticks": 7,
                "at_fs": 200 * units.US,
            }
        ],
    }


def _run_traced(spec, seed=0):
    telemetry = Telemetry()
    result = run_scenario(spec, seed=seed, telemetry=telemetry)
    return result, TraceIndex.from_recorder(telemetry.tracer)


def test_explain_jump_walks_beacon_chain():
    result, index = _run_traced(_two_faced_spec())
    assert result["violations_total"] > 0
    jumps = index.of_kind(EV_JUMP)
    assert jumps
    chain = explain_jump(index, jumps[-1])
    assert chain, "no causal chain for the last jump"
    head = chain[0]
    assert head.time_fs == jumps[-1][0]
    assert head.cause in ("beacon", "join")
    # Every explained hop with a matched TX attributes its components.
    for hop in chain:
        assert hop.node != hop.peer
        if hop.tx_time_fs is not None:
            assert hop.tx_time_fs < hop.time_fs
            assert hop.flight_ticks is not None and hop.flight_ticks > 0
            line = hop.describe()
            assert "from a beacon" in line
            if hop.owd_error_ticks is not None:
                assert "owd-error" in line


def test_chain_names_the_liar_pingpong():
    _result, index = _run_traced(_two_faced_spec())
    jumps = index.stream(EV_JUMP, "n1->n0")
    assert jumps, "victim n1 never jumped on its n0-facing port"
    chain = explain_jump(index, jumps[-1])
    nodes = {hop.node for hop in chain}
    assert "n1" in nodes  # the victim is in the loop
    peers = {hop.peer for hop in chain}
    assert "n0" in peers or "n0" in nodes  # the liar appears in the chain


def test_explain_violation_from_trace_records():
    _result, index = _run_traced(_two_faced_spec())
    violations = index.of_kind(EV_VIOLATION)
    assert violations
    record = violations[-1]
    violation = {
        "time_fs": record[0],
        "subject": index.subject_name(record[2]),
        "invariant": index.subject_name(record[3]),
    }
    explanation = explain_violation(index, violation)
    assert len(explanation.nodes) == 2
    assert set(explanation.nodes) <= {"n0", "n1", "n2"}
    assert explanation.chain, "violation explanation produced no chain"
    lines = render_explanation(explanation)
    assert lines[0].startswith("violation:")
    assert any("causal beacon chain" in line for line in lines)


def test_explain_flight_artifact(tmp_path):
    spec = _two_faced_spec()
    run_scenario(spec, seed=0, flight_dir=str(tmp_path))
    dump = load_flight(str(tmp_path / "two-faced.flight.jsonl"))
    lines = explain_flight(dump)
    text = "\n".join(lines)
    assert "scenario=two-faced" in text
    assert "causal beacon chain" in text
    assert "jumped" in text


def test_explain_flight_is_deterministic(tmp_path):
    for sub in ("a", "b"):
        run_scenario(_two_faced_spec(), seed=0, flight_dir=str(tmp_path / sub))
    lines_a = explain_flight(load_flight(str(tmp_path / "a" / "two-faced.flight.jsonl")))
    lines_b = explain_flight(load_flight(str(tmp_path / "b" / "two-faced.flight.jsonl")))
    assert lines_a == lines_b


def test_explain_flight_supervisor_quarantine():
    from repro.telemetry import build_flight

    telemetry = Telemetry(trace=False)
    dump = build_flight(
        telemetry,
        "poison",
        1,
        0,
        context={
            "reason": "supervisor-quarantine",
            "failures": [
                {"task": "poison", "attempt": 1, "kind": "timeout", "detail": "hung"},
                {"task": "poison", "attempt": 2, "kind": "crash", "detail": "rc=-9"},
            ],
        },
    )
    lines = explain_flight(dump)
    text = "\n".join(lines)
    assert "supervisor quarantine: 2 recorded failure(s)" in text
    assert "crash: 1" in text and "timeout: 1" in text
